"""Calendar-queue edge cases (ISSUE 9).

The scheduler's correctness contract is ordering: global
``(time, tiebreak)`` order regardless of which bucket, heap or staging
list an entry travelled through.  These tests pin the boundaries where
a calendar queue differs structurally from the old binary heap —
bucket-boundary ties, scheduling into the bucket being drained, the
overflow horizon, and the ``perturb_ties`` seam.
"""

from __future__ import annotations

import pytest

from repro.sim.clock import (
    CALENDAR_HORIZON_BUCKETS,
    DEFAULT_BUCKET_WIDTH_US,
    EmptySchedule,
    Simulator,
)


def test_default_bucket_width_is_one_wire_hop():
    assert DEFAULT_BUCKET_WIDTH_US == 1.0


def test_bucket_width_must_be_positive():
    with pytest.raises(ValueError):
        Simulator(bucket_width_us=0.0)
    with pytest.raises(ValueError):
        Simulator(bucket_width_us=-1.0)


def test_reverse_scheduling_order_processes_in_time_order():
    sim = Simulator()
    fired: list[float] = []
    for delay in [9.5, 3.25, 7.0, 0.5, CALENDAR_HORIZON_BUCKETS + 0.5, 1.75]:
        sim.delayed_call(delay, lambda delay=delay: fired.append(delay))
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == CALENDAR_HORIZON_BUCKETS + 0.5


def test_same_timestamp_fifo_at_a_bucket_boundary():
    """Ties at an exact bucket-boundary instant keep scheduling order."""
    sim = Simulator()
    order: list[str] = []
    # Staged while idle (the pre-run path)...
    sim.delayed_call(4.0, lambda: order.append("a"))
    sim.delayed_call(4.0, lambda: order.append("b"))
    # ...then, during the run, an earlier event schedules two more onto
    # the same boundary instant through the calendar path.
    def from_bucket_one() -> None:
        sim.delayed_call(3.0, lambda: order.append("c"))
        sim.delayed_call(3.0, lambda: order.append("d"))

    sim.delayed_call(1.0, from_bucket_one)
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_same_timestamp_fifo_spanning_many_buckets():
    """FIFO holds per instant while instants straddle bucket borders."""
    sim = Simulator(bucket_width_us=1.0)
    order: list[tuple[float, int]] = []
    # Interleave construction across instants so construction order and
    # time order disagree everywhere.
    for rank in range(4):
        for when in (0.5, 0.999, 1.0, 1.001, 2.0):
            sim.delayed_call(
                when, lambda when=when, rank=rank: order.append((when, rank))
            )
    sim.run()
    assert order == sorted(order)  # time-major, construction-rank minor


def test_schedule_into_the_draining_bucket_interleaves():
    """Callback-scheduled same-bucket events land in (time, tie) order."""
    sim = Simulator()
    order: list[str] = []

    def first() -> None:
        order.append("first@5.2")
        # Later within the bucket being drained right now:
        sim.delayed_call(0.3, lambda: order.append("mid@5.5"))
        # A tie with the *current* instant — runs after this callback,
        # before anything later:
        sim.delayed_call(0.0, lambda: order.append("tie@5.2"))
        # A tie with a not-yet-drained snapshot entry: the snapshot's
        # older tiebreak must win.
        sim.delayed_call(0.6, lambda: order.append("fresh-tie@5.8"))

    sim.delayed_call(5.2, first)
    sim.delayed_call(5.8, lambda: order.append("snapshot@5.8"))
    sim.run()
    assert order == [
        "first@5.2",
        "tie@5.2",
        "mid@5.5",
        "snapshot@5.8",
        "fresh-tie@5.8",
    ]


def test_cascading_zero_delay_chain_inside_one_bucket():
    sim = Simulator()
    order: list[int] = []

    def chain(depth: int) -> None:
        order.append(depth)
        if depth < 20:
            sim.delayed_call(0.0, lambda: chain(depth + 1))

    sim.delayed_call(2.5, lambda: chain(0))
    sim.run()
    assert order == list(range(21))
    assert sim.now == 2.5


def test_overflow_heap_migration_preserves_order():
    """Far-future timers cross the horizon and come back in order."""
    sim = Simulator(bucket_width_us=1.0)
    horizon_us = CALENDAR_HORIZON_BUCKETS * 1.0
    order: list[str] = []
    sim.delayed_call(10.0, lambda: order.append("near"))
    sim.delayed_call(horizon_us + 100.5, lambda: order.append("far"))
    sim.delayed_call(2 * horizon_us + 7.25, lambda: order.append("farther"))
    sim.run()
    assert order == ["near", "far", "farther"]
    assert sim.now == 2 * horizon_us + 7.25


def test_overflow_scheduled_during_run_migrates():
    sim = Simulator()
    horizon_us = CALENDAR_HORIZON_BUCKETS * DEFAULT_BUCKET_WIDTH_US
    order: list[str] = []

    def plant_far_timer() -> None:
        order.append("near")
        sim.delayed_call(3 * horizon_us, lambda: order.append("far"))

    sim.delayed_call(1.0, plant_far_timer)
    sim.run()
    assert order == ["near", "far"]


def test_step_migrates_when_only_overflow_remains():
    sim = Simulator()
    horizon_us = CALENDAR_HORIZON_BUCKETS * DEFAULT_BUCKET_WIDTH_US
    fired: list[str] = []
    sim.delayed_call(2 * horizon_us, lambda: fired.append("far"))
    sim.step()
    assert fired == ["far"]
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_until_deadline_restores_the_partial_bucket():
    """A mid-bucket deadline leaves the unprocessed tail schedulable."""
    sim = Simulator()
    order: list[str] = []
    sim.delayed_call(2.2, lambda: order.append("early"))
    sim.delayed_call(2.6, lambda: order.append("late"))
    sim.run(until=2.4)
    assert order == ["early"]
    assert sim.now == 2.4
    sim.run()
    assert order == ["early", "late"]
    assert sim.now == 2.6


def test_callback_exception_restores_unprocessed_entries():
    sim = Simulator()
    order: list[str] = []

    def boom() -> None:
        order.append("boom")
        raise RuntimeError("injected")

    sim.delayed_call(3.1, boom)
    sim.delayed_call(3.2, lambda: order.append("survivor-same-bucket"))
    sim.delayed_call(9.0, lambda: order.append("survivor-later"))
    with pytest.raises(RuntimeError, match="injected"):
        sim.run()
    sim.run()  # the calendar still holds exactly the unprocessed events
    assert order == ["boom", "survivor-same-bucket", "survivor-later"]


def test_perturb_ties_shuffles_ties_only_and_is_seeded():
    orders: set[tuple] = set()
    for seed in range(6):
        sim = Simulator()
        order: list = []
        sim.delayed_call(1.0, lambda: order.append("early"))
        for index in range(8):
            sim.delayed_call(3.0, lambda index=index: order.append(index))
        sim.perturb_ties(seed)
        sim.run()
        # Cross-timestamp order is untouched; ties are a permutation.
        assert order[0] == "early"
        assert sorted(order[1:]) == list(range(8))
        orders.add(tuple(order))
    assert len(orders) > 1  # seeds actually shuffle

    # Same seed twice -> identical order (reproducibility).
    def run_with_seed(seed: int) -> tuple:
        sim = Simulator()
        order: list = []
        for index in range(8):
            sim.delayed_call(3.0, lambda index=index: order.append(index))
        sim.perturb_ties(seed)
        sim.run()
        return tuple(order)

    assert run_with_seed(3) == run_with_seed(3)


def test_perturb_ties_rekeys_entries_already_in_the_calendar():
    """Perturbing after a partial run collapses buckets+overflow and
    re-keys them; every queued event still fires exactly once."""
    horizon_us = CALENDAR_HORIZON_BUCKETS * DEFAULT_BUCKET_WIDTH_US
    sim = Simulator()
    order: list = []
    for index in range(6):
        sim.delayed_call(5.0, lambda index=index: order.append(index))
    sim.delayed_call(horizon_us + 3.5, lambda: order.append("overflowed"))
    sim.run(until=1.0)  # distributes staged entries into the calendar
    sim.perturb_ties(11)
    sim.run()
    assert sorted(order[:-1]) == list(range(6))
    assert order[-1] == "overflowed"

    # perturb_ties(None) restores the FIFO counter: events scheduled
    # afterwards tie-break in construction order again.
    sim = Simulator()
    order = []
    sim.perturb_ties(23)
    sim.perturb_ties(None)
    for index in range(6):
        sim.delayed_call(5.0, lambda index=index: order.append(index))
    sim.run()
    assert order == list(range(6))


def test_custom_bucket_width_preserves_ordering():
    for width in (0.25, 2.0, 128.0):
        sim = Simulator(bucket_width_us=width)
        fired: list[float] = []
        for delay in [9.5, 3.25, 7.0, 0.5, 1.75, 3.25]:
            sim.delayed_call(delay, lambda delay=delay: fired.append(delay))
        sim.run()
        assert fired == sorted(fired), f"width={width}"
