"""Causal cross-replica tracing: context propagation, trace trees,
critical paths, and their determinism."""

import json

import pytest

from repro.cli import _instrumented_bft, _instrumented_workload, main
from repro.sim.clock import Simulator
from repro.sim.instrument import NULL_SPAN, trace_extract, trace_inject
from repro.telemetry import TRACEPARENT_KEY, Telemetry, TraceContext
from repro.telemetry.critical_path import (
    STAGE_ORDER,
    critical_paths,
    stage_of,
    summarize,
)


# ----------------------------------------------------------------------
# TraceContext / traceparent wire format
# ----------------------------------------------------------------------
def test_traceparent_roundtrip():
    context = TraceContext(0xDEADBEEF, 42, True)
    header = context.traceparent()
    assert header == f"00-{0xDEADBEEF:032x}-{42:016x}-01"
    parsed = TraceContext.parse(header)
    assert parsed == context
    assert parsed.sampled is True
    unsampled = TraceContext(1, 2, False)
    assert TraceContext.parse(unsampled.traceparent()) == unsampled


@pytest.mark.parametrize("garbage", [
    None,
    "",
    "garbage",
    "01-" + "0" * 32 + "-" + "0" * 16 + "-01",  # wrong version
    "00-xyz-abc-01",
    "00-" + "0" * 31 + "-" + "0" * 16 + "-01",  # short trace id
    "00-" + "0" * 32 + "-" + "0" * 16 + "-02",  # bad flags
    1234,
])
def test_traceparent_rejects_garbage(garbage):
    assert TraceContext.parse(garbage) is None


def test_trace_context_is_immutable():
    context = TraceContext(1, 2, True)
    with pytest.raises(AttributeError):
        context.trace_id = 9


# ----------------------------------------------------------------------
# Tracepoints: detached behaviour
# ----------------------------------------------------------------------
def test_inject_extract_are_noops_when_detached():
    sim = Simulator()
    carrier = {}
    trace_inject(sim, carrier, NULL_SPAN)
    assert carrier == {}
    assert trace_extract(sim, {TRACEPARENT_KEY: "00-" + "0" * 31 + "1-"
                               + "0" * 15 + "1-01"}) is None


def test_inject_ignores_null_span_with_hub_attached():
    sim = Simulator()
    Telemetry.attach(sim)
    carrier = {}
    trace_inject(sim, carrier, NULL_SPAN)
    assert carrier == {}
    trace_inject(sim, carrier, None)
    assert carrier == {}


def test_inject_extract_roundtrip_through_hub():
    sim = Simulator()
    hub = Telemetry.attach(sim)
    span = hub.span_begin("request.auth_send")
    carrier = {}
    trace_inject(sim, carrier, span)
    assert TRACEPARENT_KEY in carrier
    context = trace_extract(sim, carrier)
    assert context.trace_id == span.trace_id
    assert context.span_id == span.span_id
    child = hub.span_begin("tnic.post", parent=context)
    assert child.trace_id == span.trace_id
    assert child.parent_id == span.span_id


# ----------------------------------------------------------------------
# Cross-layer propagation: the send/recv datapath
# ----------------------------------------------------------------------
def test_sendrecv_spans_share_one_trace_per_request():
    _, hub = _instrumented_workload(3, seed=0, tamper=False)
    roots = [s for s in hub.spans.finished
             if s.name == "request.auth_send"]
    assert len(roots) == 3
    for root in roots:
        members = [s for s in hub.spans.finished
                   if s.trace_id == root.trace_id]
        names = {s.name for s in members}
        # The full Fig. 6 decomposition joined one trace — including
        # the *receiving* node's verification stage.
        assert {"request.auth_send", "tnic.post", "tnic.tx", "tnic.dma",
                "attest.hmac", "roce.tx", "roce.rx_verify"} <= names
        assert root.parent_id is None
        for span in members:
            if span is not root:
                assert span.parent_id is not None


def test_sendrecv_critical_path_stage_order_matches_fig06():
    _, hub = _instrumented_workload(4, seed=1, tamper=False)
    paths = critical_paths(hub.spans.finished)
    requests = [p for p in paths if p["root"] == "request.auth_send"]
    assert len(requests) == 4
    for path in requests:
        stages = [entry["stage"] for entry in path["stages"]]
        # Deduplicate preserving first-appearance order.
        order = list(dict.fromkeys(stages))
        assert order == list(STAGE_ORDER)
        assert set(path["breakdown"]) == set(STAGE_ORDER)
        # The spine runs root -> gating span in causal order.
        spine = path["spine"]
        assert spine[0]["name"] == "request.auth_send"
        assert all(a["start_us"] <= b["start_us"]
                   for a, b in zip(spine, spine[1:]))


# ----------------------------------------------------------------------
# Cross-replica propagation: the BFT cluster
# ----------------------------------------------------------------------
def test_bft_request_traces_span_all_replicas():
    system, hub = _instrumented_bft(4, seed=3)
    roots = [s for s in hub.spans.finished if s.name == "bft.request"]
    assert len(roots) == 4
    for root in roots:
        members = [s for s in hub.spans.finished
                   if s.trace_id == root.trace_id]
        names = {s.name for s in members}
        assert {"bft.request", "system.net_hop", "bft.leader",
                "attest.hmac", "bft.follower", "bft.rx_verify"} <= names
        # Spans from leader AND every follower joined the trace.
        nodes = {s.labels.get("node") for s in members
                 if "node" in s.labels}
        assert nodes == {system.leader_name, *system.followers}


def test_bft_critical_path_alternates_hops_and_replica_work():
    _, hub = _instrumented_bft(4, seed=3)
    paths = critical_paths(hub.spans.finished)
    committed = [p for p in paths if p["root"] == "bft.request"
                 and p["labels"].get("status") == "committed"]
    assert len(committed) == 4
    for path in committed:
        spine_names = [hop["name"] for hop in path["spine"]]
        # client -> leader hop -> leader -> follower hop -> follower
        # -> reply hop: the protocol's causal chain.
        assert spine_names == [
            "bft.request", "system.net_hop", "bft.leader",
            "system.net_hop", "bft.follower", "system.net_hop",
        ]
        assert {"hmac", "wire", "rx_verify"} <= set(path["breakdown"])
        # Stage instances along the chain keep taxonomy order within
        # each replica: verification precedes the replica's own attest.
        follower_stages = [e for e in path["stages"]
                           if e["name"] in ("bft.rx_verify", "attest.hmac")]
        assert follower_stages, "stage entries missing"


def test_bft_critical_paths_byte_identical_across_runs():
    documents = []
    for _ in range(2):
        _, hub = _instrumented_bft(5, seed=7)
        paths = critical_paths(hub.spans.finished)
        documents.append(json.dumps(
            {"critical_paths": paths, "summary": summarize(paths)},
            indent=2, sort_keys=True,
        ))
    assert documents[0] == documents[1]


def test_sendrecv_trace_trees_byte_identical_across_runs():
    trees = []
    for _ in range(2):
        _, hub = _instrumented_workload(5, seed=11, tamper=False)
        trees.append(hub.spans.tree())
    assert trees[0] == trees[1]
    assert "request.auth_send" in trees[0]


# ----------------------------------------------------------------------
# Deterministic head-based sampling
# ----------------------------------------------------------------------
def test_sampling_drops_whole_traces_deterministically():
    def run():
        from repro.api import Cluster, auth_send
        from repro.api.ops import recv

        cluster = Cluster(["alice", "bob"], seed=0)
        hub = Telemetry.attach(cluster.sim, sample_every=2,
                               sampling_seed=9)
        conn_a, conn_b = cluster.connect("alice", "bob")
        for i in range(8):
            cluster.run(auth_send(conn_a, b"x" * 64))
            cluster.run()
            recv(conn_b)
        return hub

    hub_a, hub_b = run(), run()
    assert hub_a.spans.sampled_out > 0
    kept = {s.trace_id for s in hub_a.spans.finished
            if s.name == "request.auth_send"}
    assert 0 < len(kept) < 8  # some kept, some dropped
    # Unsampled traces vanish wholesale: no orphan descendants.
    for span in hub_a.spans.finished:
        assert span.sampled
    assert hub_a.spans.tree() == hub_b.spans.tree()
    assert hub_a.spans.sampled_out == hub_b.spans.sampled_out


def test_default_sampling_keeps_everything():
    _, hub = _instrumented_workload(2, seed=0, tamper=False)
    assert hub.spans.sampled_out == 0


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_trace_cli_critical_path_deterministic(capsys):
    outputs = []
    for _ in range(2):
        assert main(["trace", "--scenario", "bft", "--ops", "3",
                     "--seed", "3", "--critical-path", "--summary"]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
    assert "bft.request" in outputs[0]
    assert "stages:" in outputs[0]
    assert "requests: 3" in outputs[0]


def test_trace_cli_analysis_document(tmp_path, capsys):
    out = tmp_path / "analysis.json"
    assert main(["trace", "--ops", "2", "--critical-path",
                 "--output", str(out)]) == 0
    capsys.readouterr()
    document = json.loads(out.read_text())
    assert set(document) == {"critical_paths", "summary"}
    assert document["summary"]["requests"] == 2
    for path in document["critical_paths"]:
        assert {"trace", "root", "spine", "stages",
                "breakdown"} <= set(path)


def test_stage_of_taxonomy():
    assert stage_of("tnic.post") == "post"
    assert stage_of("tnic.dma") == "dma"
    assert stage_of("attest.hmac") == "hmac"
    assert stage_of("roce.tx") == "wire"
    assert stage_of("system.net_hop") == "wire"
    assert stage_of("roce.rx_verify") == "rx_verify"
    assert stage_of("bft.rx_verify") == "rx_verify"
    assert stage_of("bft.request") == "other"
