"""The hot-path cost pass: reachability, PERF rules, the manifest.

Three layers under test, mirroring the corpus under
``tests/fixtures/hotpath/``:

* the static PERF001–PERF006 rules — every seeded violation in
  ``broken/`` must be reported at exactly its line, and nothing in
  ``clean/`` may be flagged (gated f-strings, hoisted bound methods,
  try/finally, yielding protocol waits, the sanctioned sha256 helper);
* the interprocedural closure — the entry patterns must resolve to the
  fixture kernel, reach its callees, and stop at exempt functions and
  package boundaries;
* the manifest — schema-1 totals, pre-suppression allocation counts
  (a waiver silences the finding, never the count), and the real-tree
  contract the ``scripts/check.sh`` gate regresses against.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.hotpath import (
    HOTPATH_RULES,
    HotPathEngine,
    HotPathManifest,
    hotpath_manifest,
)
from repro.analysis.rules import collect_findings, rule_catalog, run_rules
from repro.analysis.walker import collect_sources, default_package_root

FIXTURES = Path(__file__).parent / "fixtures" / "hotpath"

PERF_IDS = ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005", "PERF006")


def _corpus_findings(corpus: str):
    sources = collect_sources([FIXTURES / corpus])
    return collect_findings(sources, [cls() for cls in HOTPATH_RULES])


# ----------------------------------------------------------------------
# Static corpus: no false negatives on broken/, no positives on clean/
# ----------------------------------------------------------------------

def test_broken_corpus_every_rule_fires():
    fired = {f.rule for f in _corpus_findings("broken")}
    assert fired == set(PERF_IDS)


def test_broken_corpus_detects_exactly_the_seeded_violations():
    expected = {
        ("PERF001", "repro.sim.hotkernel", 25),  # list comprehension
        ("PERF001", "repro.sim.hotkernel", 26),  # "queue:" + str(...)
        ("PERF001", "repro.sim.hotkernel", 27),  # lambda event: None
        ("PERF002", "repro.sim.hotkernel", 28),  # EventRecord() w/o slots
        ("PERF003", "repro.sim.hotkernel", 29),  # ungated f-string emit
        ("PERF004", "repro.sim.hotkernel", 35),  # transmit looked up 2x
        ("PERF005", "repro.sim.hotkernel", 37),  # try/except in the loop
        ("PERF006", "repro.sim.hotkernel", 41),  # raw hashlib.sha256
    }
    got = {(f.rule, f.module, f.line) for f in _corpus_findings("broken")}
    assert got == expected, (
        f"missed: {expected - got}; spurious: {got - expected}"
    )


def test_clean_corpus_is_silent():
    assert _corpus_findings("clean") == []


def test_perf004_names_the_chain_and_the_fix():
    finding = next(
        f for f in _corpus_findings("broken") if f.rule == "PERF004"
    )
    assert "self.mac.port.transmit" in finding.message
    assert "hoist" in finding.message


# ----------------------------------------------------------------------
# Interprocedural closure
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def broken_engine():
    return HotPathEngine(collect_sources([FIXTURES / "broken"]))


@pytest.fixture(scope="module")
def clean_engine():
    return HotPathEngine(collect_sources([FIXTURES / "clean"]))


def test_entry_patterns_resolve_against_the_fixture_kernel(broken_engine):
    assert set(broken_engine.reachable) == {
        "repro.sim.hotkernel.Simulator.step",
        "repro.sim.hotkernel.Simulator._drain",
    }


def test_step_reaches_its_callees_transitively(broken_engine):
    reach = broken_engine.reachable["repro.sim.hotkernel.Simulator.step"]
    assert "repro.sim.hotkernel.Simulator._drain" in reach
    assert "repro.sim.hotkernel.emit" in reach


def test_helpers_join_the_hot_set_through_calls(clean_engine):
    assert "repro.sim.coolkernel.sha256" in clean_engine.hot_functions
    assert "repro.sim.coolkernel.count" in clean_engine.hot_functions


def test_exempt_functions_are_cut_from_the_closure():
    manifest = HotPathManifest(
        entry_points=("Simulator.step",),
        hot_packages=("repro.sim",),
        exempt_functions=("_drain",),
    )
    sources = collect_sources([FIXTURES / "broken"])
    engine = HotPathEngine(sources, manifest)
    reach = engine.reachable["repro.sim.hotkernel.Simulator.step"]
    assert "repro.sim.hotkernel.Simulator._drain" not in reach
    # With _drain exempt, its try/except and raw hash are unchecked.
    assert not any(
        f.rule in ("PERF005", "PERF006") for f in engine.findings
    )


def test_allocation_stats_count_sites_per_function(broken_engine):
    stats = broken_engine.function_stats[
        "repro.sim.hotkernel.Simulator.step"
    ]
    assert stats["allocation_sites"] == 3
    assert stats["emit_sites"] == {"gated": 0, "ungated": 1}


def test_gated_and_ungated_emits_are_tallied_separately(clean_engine):
    stats = clean_engine.function_stats[
        "repro.sim.coolkernel.Simulator.step"
    ]
    # The gated f-string emit and the ungated-but-cheap counter bump.
    assert stats["emit_sites"] == {"gated": 1, "ungated": 1}


# ----------------------------------------------------------------------
# The manifest artifact
# ----------------------------------------------------------------------

def test_manifest_schema_and_totals():
    sources = collect_sources([FIXTURES / "broken"])
    manifest = hotpath_manifest(sources)
    assert manifest["schema"] == 1
    assert set(manifest["entry_points"]) == {
        "repro.sim.hotkernel.Simulator.step",
        "repro.sim.hotkernel.Simulator._drain",
    }
    totals = manifest["totals"]
    assert totals["entry_points"] == 2
    assert totals["functions"] == 3
    assert totals["allocation_sites"] == 3
    assert totals["ungated_emits"] == 1


def test_manifest_counts_are_pre_suppression(tmp_path):
    # A waived allocation is silenced by lint but still counts in the
    # manifest: the check.sh gate must see growth even when each new
    # site is individually blessed.
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "kernel.py").write_text(
        "class Simulator:\n"
        "    def step(self):\n"
        "        return [x for x in (1, 2)]"
        "  # lint: ignore[PERF001] deliberate\n"
    )
    sources = collect_sources([tmp_path])
    findings = run_rules(
        sources, [cls() for cls in HOTPATH_RULES], baseline=None
    )
    assert findings == []  # the waiver silences the finding ...
    manifest = hotpath_manifest(sources)
    assert manifest["totals"]["allocation_sites"] == 1  # ... not the count


# ----------------------------------------------------------------------
# Rule registration
# ----------------------------------------------------------------------

def test_perf_rules_registered_in_catalog():
    catalog = rule_catalog()
    for rule_id in PERF_IDS:
        assert rule_id in catalog
        assert catalog[rule_id]


def test_perf_rules_carry_explanations():
    for cls in HOTPATH_RULES:
        rule = cls()
        assert rule.explanation, f"{rule.rule_id} has no --explain text"


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_sources():
    return collect_sources([default_package_root()])


@pytest.mark.lint
def test_real_tree_has_no_unwaived_perf_findings(real_sources):
    findings = run_rules(real_sources, [cls() for cls in HOTPATH_RULES])
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.lint
def test_real_tree_closure_covers_the_kernel_datapath(real_sources):
    manifest = hotpath_manifest(real_sources)
    drain = manifest["entry_points"]["repro.sim.clock.Simulator._drain"]
    # The drain loop dispatches triggered events into their callbacks.
    assert "repro.sim.events.Event.succeed" in manifest["entry_points"]
    assert "repro.sim.clock.Simulator._drain" in drain["reachable"]
    tx = manifest["entry_points"]["repro.core.device.TnicDevice._tx_path"]
    # Device tx reaches the RoCE segmentation path interprocedurally.
    assert any(
        q.endswith("RoceKernel._segment") for q in tx["reachable"]
    )


@pytest.mark.lint
def test_real_tree_matches_the_committed_manifest(real_sources):
    import json

    committed_path = (
        Path(__file__).parent.parent
        / "benchmarks" / "results" / "hotpath_manifest.json"
    )
    committed = json.loads(committed_path.read_text())
    fresh = hotpath_manifest(real_sources)
    assert fresh["totals"] == committed["totals"], (
        "hot-path manifest drifted; regenerate with "
        "`python -m repro lint --hotpath-manifest "
        "benchmarks/results/hotpath_manifest.json`"
    )
