"""Property-based tests (hypothesis) on core data structures and
invariants: attestation, counters, logs, memory, packets, crypto."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AttestationKernel, AttestedMessage, AttestationError
from repro.core.counters import CounterStore
from repro.crypto.hashing import canonical_bytes, sha256
from repro.crypto.hmac_engine import hmac_sha256, hmac_verify
from repro.stack.memory import HugePageArea
from repro.systems.peer_review import TamperEvidentLog
from repro.tee.sgx_memory import EnclaveMemoryModel
from repro.api.transform import WrappedMessage
from repro.verification.lemmas import (
    lemma_no_double_accept,
    lemma_no_lost_messages,
    lemma_no_reordering,
    lemma_transferable_authentication,
)
from repro.verification.model import Event

KEY = b"property-test-key-0123456789abcd"

payloads = st.binary(min_size=0, max_size=256)


# ---------------------------------------------------------------------------
# Attestation kernel
# ---------------------------------------------------------------------------

@given(st.lists(payloads, min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_attest_verify_roundtrip_any_payload_sequence(items):
    """In-order delivery of any payload sequence verifies completely."""
    sender = AttestationKernel(1)
    receiver = AttestationKernel(2)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)
    for item in items:
        message = sender.attest(1, item)
        assert receiver.verify(1, message) == item
    assert receiver.counters.expected_recv(1) == len(items)


@given(payloads, st.binary(min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_any_payload_mutation_is_rejected(payload, suffix):
    """Appending/replacing bytes always breaks the MAC."""
    sender = AttestationKernel(1)
    receiver = AttestationKernel(2)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)
    message = sender.attest(1, payload)
    mutated = replace(message, payload=payload + suffix)
    with pytest.raises(AttestationError):
        receiver.verify(1, mutated)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=1000))
@settings(max_examples=50, deadline=None)
def test_counter_metadata_mutation_rejected(counter_delta, device_delta):
    sender = AttestationKernel(1)
    receiver = AttestationKernel(2)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)
    message = sender.attest(1, b"x")
    mutated = replace(
        message,
        counter=message.counter + counter_delta + 1,
        device_id=message.device_id + device_delta,
    )
    with pytest.raises(AttestationError):
        receiver.verify(1, mutated)


@given(st.lists(st.sampled_from(["send", "recv"]), max_size=60))
@settings(max_examples=60, deadline=None)
def test_counters_monotone_under_any_op_sequence(ops):
    """send and recv counters never decrease; send values are unique."""
    store = CounterStore()
    seen_send = set()
    last_send = -1
    last_recv = -1
    for op in ops:
        if op == "send":
            value = store.next_send(1)
            assert value not in seen_send
            assert value > last_send
            seen_send.add(value)
            last_send = value
        else:
            expected = store.expected_recv(1)
            assert expected > last_recv
            store.advance_recv(1)
            last_recv = expected


# ---------------------------------------------------------------------------
# Bridge: real kernel executions satisfy the verification lemmas
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.sampled_from(["deliver", "replay", "skip"]),
                  st.integers(min_value=0, max_value=5)),
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_real_executions_satisfy_nonequivocation_lemmas(schedule):
    """Drive the real attestation kernel with an adversarial delivery
    schedule and check the produced trace against the paper's lemmas."""
    sender = AttestationKernel(1)
    receiver = AttestationKernel(2)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)
    history: list[AttestedMessage] = []
    trace: list[Event] = []
    for action, index in schedule:
        if action == "skip" or not history or index >= len(history):
            message = sender.attest(1, f"m{len(history)}".encode())
            history.append(message)
            trace.append(Event("send", message.payload.decode(), message.counter))
            continue
        candidate = history[index]
        try:
            receiver.verify(1, candidate)
        except AttestationError:
            continue
        trace.append(
            Event("accept", candidate.payload.decode(), candidate.counter)
        )
    trace_t = tuple(trace)
    assert lemma_transferable_authentication(trace_t)
    assert lemma_no_double_accept(trace_t)
    assert lemma_no_reordering(trace_t)
    assert lemma_no_lost_messages(trace_t)


# ---------------------------------------------------------------------------
# Hash-chained log
# ---------------------------------------------------------------------------

@given(
    st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=20),
    st.data(),
)
@settings(max_examples=50, deadline=None)
def test_any_log_tamper_is_detected(entries, data):
    log = TamperEvidentLog()
    for entry in entries:
        log.append("send", entry)
    assert log.verify_chain() is None
    index = data.draw(st.integers(min_value=0, max_value=len(entries) - 1))
    original = log.records[index].data
    replacement = data.draw(
        st.binary(min_size=1, max_size=32).filter(lambda b: b != original)
    )
    log.tamper(index, replacement)
    assert log.verify_chain() == index


# ---------------------------------------------------------------------------
# Canonical hashing / HMAC
# ---------------------------------------------------------------------------

@given(st.lists(payloads, max_size=8), st.lists(payloads, max_size=8))
@settings(max_examples=100, deadline=None)
def test_canonical_encoding_injective_on_part_lists(a, b):
    """Distinct part lists never encode identically (length prefixes)."""
    if a != b:
        assert canonical_bytes(a) != canonical_bytes(b)
    else:
        assert canonical_bytes(a) == canonical_bytes(b)


@given(payloads, payloads)
@settings(max_examples=80, deadline=None)
def test_hmac_verifies_iff_inputs_match(m1, m2):
    mac = hmac_sha256(KEY, m1)
    assert hmac_verify(KEY, mac, m2) == (m1 == m2)


@given(st.lists(st.one_of(st.binary(max_size=16), st.text(max_size=8),
                          st.integers(), st.booleans()), max_size=6))
@settings(max_examples=80, deadline=None)
def test_sha256_stable_over_mixed_types(parts):
    assert sha256(*parts) == sha256(*parts)
    assert len(sha256(*parts)) == 32


# ---------------------------------------------------------------------------
# ibv memory
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=0, max_value=4000),
    st.binary(min_size=1, max_size=96),
)
@settings(max_examples=80, deadline=None)
def test_memory_roundtrip_any_offset(offset, data):
    region = HugePageArea().allocate(8192)
    address = region.base + offset
    region.write(address, data)
    assert region.read(address, len(data)) == data


@given(st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_allocations_never_overlap(n):
    area = HugePageArea()
    regions = [area.allocate(1) for _ in range(n)]
    spans = sorted((r.base, r.base + r.size) for r in regions)
    for (a_start, a_end), (b_start, b_end) in zip(spans, spans[1:]):
        assert a_end <= b_start


# ---------------------------------------------------------------------------
# EPC paging model
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10**7), min_size=1,
                max_size=200))
@settings(max_examples=40, deadline=None)
def test_epc_accounting_invariants(addresses):
    model = EnclaveMemoryModel(epc_bytes=64 * 4096)
    for address in addresses:
        cost = model.access(address)
        assert cost > 0
    assert model.hits + model.misses >= len(addresses)
    assert model.resident_pages <= model.capacity_pages


# ---------------------------------------------------------------------------
# Transform wire format
# ---------------------------------------------------------------------------

@given(payloads, st.booleans())
@settings(max_examples=80, deadline=None)
def test_wrapped_message_roundtrip_any_body(body, with_receiver):
    wrapped = WrappedMessage(
        body=body,
        sender_state=sha256("s", body),
        receiver_state=sha256("r") if with_receiver else b"",
    )
    assert WrappedMessage.decode(wrapped.encode()) == wrapped
