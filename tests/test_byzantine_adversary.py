"""Tests for the Byzantine adversary harness."""

import pytest

from repro.byzantine import (
    forge_attack,
    impersonation_attack,
    replay_attack,
    run_wire_campaign,
    stale_counter_attack,
)
from repro.core import AttestationKernel

KEY = b"victim-session-key-0123456789ab!"
SESSION = 1


def victim_pair():
    sender = AttestationKernel(device_id=1)
    receiver = AttestationKernel(device_id=2)
    sender.install_session(SESSION, KEY)
    receiver.install_session(SESSION, KEY)
    return sender, receiver


def test_forge_attack_fully_rejected():
    _, receiver = victim_pair()
    report = forge_attack(receiver, SESSION, attempts=100)
    assert report.defended
    assert report.attempts == 100
    assert report.rejected == 100


def test_replay_attack_fully_rejected():
    sender, receiver = victim_pair()
    report = replay_attack(sender, receiver, SESSION, messages=20)
    assert report.defended
    assert report.attempts == 20


def test_reorder_attack_only_in_order_accepted():
    sender, receiver = victim_pair()
    report = stale_counter_attack(sender, receiver, SESSION, messages=10)
    assert report.defended
    # Of the reversed deliveries only the genuinely in-order ones pass
    # (the last message delivered is counter 0, which is in order).
    assert receiver.counters.expected_recv(SESSION) >= 1


def test_impersonation_attack_fully_rejected():
    _, receiver = victim_pair()
    report = impersonation_attack(receiver, SESSION, attempts=30)
    assert report.defended
    assert report.attempts == 30


def test_wire_campaign_exactly_once_fifo_delivery():
    report = run_wire_campaign(messages=25, seed=3)
    assert report.defended, report.notes
    # Tampering happened and was caught at the NIC.
    assert report.rejected >= 1


def test_wire_campaign_without_tampering():
    report = run_wire_campaign(messages=10, tamper_every=10**9, seed=1)
    assert report.defended


def test_attack_report_bookkeeping():
    from repro.byzantine.adversary import AttackReport

    report = AttackReport("test")
    report.record(accepted=False)
    report.record(accepted=True, note="oops")
    assert report.attempts == 2
    assert report.rejected == 1
    assert report.accepted == 1
    assert not report.defended
    assert report.notes == ["oops"]
