"""Tests for Byzantine-client interaction (Appendix C.1)."""

import pytest

from repro.core import AttestationKernel
from repro.core.attestation import AttestationError, AttestedMessage
from repro.systems.clients import (
    ClientAuthError,
    ClientReplyPort,
    SignedReply,
    TrustedClient,
)

KEY = b"client-test-key-0123456789abcdef"
SESSION = 1


def setup():
    kernel = AttestationKernel(device_id=7)
    kernel.install_session(SESSION, KEY)
    port = ClientReplyPort(kernel)
    client = TrustedClient("client-1")
    client.learn_device_key(7, port.public_key)
    return kernel, port, client


def test_honest_reply_roundtrip():
    kernel, port, client = setup()
    nonce, request = client.make_request(b"incr")
    message = kernel.attest(SESSION, b"result:1")
    reply = port.sign_reply(SESSION, message, nonce)
    assert client.verify_reply(reply) == b"result:1"
    assert client.accepted == 1
    assert port.signed == 1


def test_device_refuses_to_sign_unverifiable_content():
    """A compromised host cannot get the device to endorse fabricated
    bytes: sign_reply checks the attestation first."""
    kernel, port, client = setup()
    nonce, _ = client.make_request(b"incr")
    genuine = kernel.attest(SESSION, b"result:1")
    fabricated = AttestedMessage(
        payload=b"evil", alpha=genuine.alpha, session_id=SESSION,
        device_id=genuine.device_id, counter=genuine.counter,
    )
    with pytest.raises(AttestationError, match="refuses to sign"):
        port.sign_reply(SESSION, fabricated, nonce)
    assert port.refused == 1


def test_client_rejects_unknown_device():
    kernel, port, client = setup()
    nonce, _ = client.make_request(b"incr")
    other_kernel = AttestationKernel(device_id=99)
    other_kernel.install_session(SESSION, KEY)
    other_port = ClientReplyPort(other_kernel)
    message = other_kernel.attest(SESSION, b"result:1")
    reply = other_port.sign_reply(SESSION, message, nonce)
    with pytest.raises(ClientAuthError, match="no C_pub"):
        client.verify_reply(reply)


def test_client_rejects_forged_signature():
    kernel, port, client = setup()
    nonce, _ = client.make_request(b"incr")
    message = kernel.attest(SESSION, b"result:1")
    reply = port.sign_reply(SESSION, message, nonce)
    forged = SignedReply(
        message=reply.message, request_nonce=reply.request_nonce,
        signature=reply.signature ^ 1,
    )
    with pytest.raises(ClientAuthError, match="signature invalid"):
        client.verify_reply(forged)


def test_client_detects_stale_execution_round():
    """The Appendix-C.1 attack: a valid, attested but *stale* reply is
    rejected because its nonce answers no outstanding request."""
    kernel, port, client = setup()
    nonce, _ = client.make_request(b"incr")
    message = kernel.attest(SESSION, b"result:1")
    reply = port.sign_reply(SESSION, message, nonce)
    assert client.verify_reply(reply) == b"result:1"
    # The Byzantine machine replays the same (valid) reply later.
    with pytest.raises(ClientAuthError, match="stale or replayed"):
        client.verify_reply(reply)
    assert client.rejected == 1


def test_reply_bound_to_specific_nonce():
    kernel, port, client = setup()
    nonce_a, _ = client.make_request(b"req-a")
    nonce_b, _ = client.make_request(b"req-b")
    message = kernel.attest(SESSION, b"result")
    reply_for_a = port.sign_reply(SESSION, message, nonce_a)
    # Re-labelling the reply for nonce_b breaks the signature.
    relabelled = SignedReply(
        message=reply_for_a.message, request_nonce=nonce_b,
        signature=reply_for_a.signature,
    )
    with pytest.raises(ClientAuthError, match="signature invalid"):
        client.verify_reply(relabelled)


def test_nonces_are_unique():
    _, _, client = setup()
    nonces = {client.make_request(b"r")[0] for _ in range(50)}
    assert len(nonces) == 50
