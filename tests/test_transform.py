"""Tests for the generic CFT→BFT transformation recipe (§6.2)."""

import pytest

from repro.api import Cluster, BftTransform, TransformViolation, WrappedMessage
from repro.crypto.hashing import sha256


class CounterMachine:
    """A trivial deterministic state machine (replicated counter)."""

    def __init__(self):
        self.value = 0

    def digest(self) -> bytes:
        return sha256("counter", self.value)

    def execute(self, body: bytes) -> None:
        if body != b"incr":
            raise ValueError("unknown command")
        self.value += 1

    def simulate(self, body: bytes) -> bytes:
        """Expected digest of a peer that just executed *body*."""
        if body != b"incr":
            return b"\x00" * 32
        return sha256("counter", self.value + 1)


def make_channel():
    cluster = Cluster(["sender", "receiver"])
    s_conn, r_conn = cluster.connect("sender", "receiver")
    sender_machine = CounterMachine()
    receiver_machine = CounterMachine()
    sender = BftTransform(s_conn, sender_machine.digest)
    receiver = BftTransform(
        r_conn, receiver_machine.digest,
        simulate_sender=receiver_machine.simulate,
    )
    return cluster, sender, receiver, sender_machine, receiver_machine


def test_wrapped_message_roundtrip():
    digest = sha256("s")
    wrapped = WrappedMessage(b"body", digest, sha256("r"))
    decoded = WrappedMessage.decode(wrapped.encode())
    assert decoded == wrapped


def test_wrapped_message_without_receiver_state():
    wrapped = WrappedMessage(b"body", sha256("s"))
    decoded = WrappedMessage.decode(wrapped.encode())
    assert decoded.receiver_state == b""
    assert decoded.body == b"body"


def test_wrapped_message_validation():
    with pytest.raises(ValueError):
        WrappedMessage(b"x", b"short").encode()
    with pytest.raises(TransformViolation):
        WrappedMessage.decode(b"")


def test_honest_sender_passes_all_checks():
    cluster, sender, receiver, s_machine, r_machine = make_channel()
    s_machine.execute(b"incr")  # sender acts on the request...
    cluster.run(sender.send(b"incr"))  # ...and sends evidence
    cluster.run()
    body = receiver.deliver()
    assert body == b"incr"
    r_machine.execute(body)
    assert r_machine.value == s_machine.value == 1


def test_deliver_returns_none_when_idle():
    _, __, receiver, *_ = make_channel()
    assert receiver.deliver() is None


def test_byzantine_state_detected_by_simulation():
    """Integrity: a sender whose claimed state does not match the
    deterministic simulation of its action is exposed."""
    cluster, sender, receiver, s_machine, _ = make_channel()
    s_machine.value = 41  # deviate: claims a state unreachable via 'incr'
    cluster.run(sender.send(b"incr"))
    cluster.run()
    with pytest.raises(TransformViolation, match="deviated"):
        receiver.deliver()
    assert receiver.violations == ["sender-state mismatch"]


def test_stale_system_view_detected():
    """The echoed receiver state must be one of the receiver's own
    recent digests."""
    cluster, sender, receiver, s_machine, _ = make_channel()
    s_machine.execute(b"incr")
    sender.observe_peer_state(sha256("never-a-receiver-state"))
    cluster.run(sender.send(b"incr"))
    cluster.run()
    with pytest.raises(TransformViolation, match="view"):
        receiver.deliver()


def test_valid_system_view_accepted():
    cluster, sender, receiver, s_machine, r_machine = make_channel()
    # Round 1 establishes the receiver digest at the sender.
    s_machine.execute(b"incr")
    cluster.run(sender.send(b"incr"))
    cluster.run()
    r_machine.execute(receiver.deliver())
    # Sender learns receiver state out-of-band (ACK piggyback).
    sender.observe_peer_state(r_machine.digest())
    # Round 2: the echoed view must be accepted.
    s_machine.execute(b"incr")
    cluster.run(sender.send(b"incr"))
    cluster.run()
    assert receiver.deliver() == b"incr"


def test_tampered_wire_message_never_reaches_transform():
    """TNIC verification (L8-9) rejects tampering below the transform."""
    from repro.net.fabric import NetworkFault

    state = {"hit": False}

    def tamper_once(pkt):
        if pkt.payload and pkt.trailer is not None and not state["hit"]:
            state["hit"] = True
            flipped = bytes([pkt.payload[0] ^ 0xFF]) + pkt.payload[1:]
            return pkt.with_payload(flipped)
        return None

    cluster = Cluster(["s", "r"], fault=NetworkFault(tamper=tamper_once))
    s_conn, r_conn = cluster.connect("s", "r")
    machine_s, machine_r = CounterMachine(), CounterMachine()
    sender = BftTransform(s_conn, machine_s.digest)
    receiver = BftTransform(
        r_conn, machine_r.digest, simulate_sender=machine_r.simulate
    )
    machine_s.execute(b"incr")
    completion = sender.send(b"incr")
    cluster.run(completion)
    cluster.run()
    # Retransmission delivered the genuine message; tampered one vanished.
    assert receiver.deliver() == b"incr"
    assert cluster["r"].device.roce.verification_failures >= 1
