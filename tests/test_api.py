"""Integration tests for the TNIC programming APIs (Table 1)."""

import pytest

from repro.api import Cluster, auth_send, local_send, local_verify, poll, rem_read, rem_write
from repro.api.connection import SessionDirectory, ibv_sync
from repro.api.ops import recv
from repro.core.attestation import AttestedMessage


def make_cluster(names=("alice", "bob"), **kwargs):
    return Cluster(list(names), **kwargs)


def test_full_initialisation_and_auth_send():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")
    completion = auth_send(a_conn, b"hello")
    cluster.run(completion)
    cluster.run()
    item = recv(b_conn)
    assert item["payload"] == b"hello"
    assert item["message"].device_id == cluster["alice"].device.device_id


def test_auth_send_requires_sync():
    cluster = make_cluster()
    session_id, _ = cluster.sessions.new_session()
    conn = cluster["alice"].ibv_qp_conn(cluster["bob"].ip, session_id)
    with pytest.raises(RuntimeError, match="sync"):
        auth_send(conn, b"x")


def test_poll_counts_verified_receptions_only():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")
    for i in range(4):
        cluster.run(auth_send(a_conn, f"m{i}".encode()))
    cluster.run()
    entries = poll(b_conn, max_entries=10)
    assert len(entries) == 4
    assert poll(b_conn) == []


def test_rem_write_lands_in_remote_window():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")
    completion = rem_write(a_conn, 128, b"remote-data")
    cluster.run(completion)
    cluster.run()
    recv(b_conn)  # consume the delivery notification
    region = cluster["bob"].rdma.region_for_address(a_conn.remote_base, 1)
    assert region.read(a_conn.remote_base + 128, 11) == b"remote-data"


def test_rem_write_bounds_checked():
    cluster = make_cluster()
    a_conn, _ = cluster.connect("alice", "bob")
    with pytest.raises(ValueError):
        rem_write(a_conn, a_conn.remote_size - 1, b"too-long")


def test_rem_read_fetches_remote_bytes():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")
    # Bob publishes data in his registered window.
    region = cluster["bob"].rdma.region_for_address(a_conn.remote_base, 1)
    region.write(a_conn.remote_base + 64, b"published")
    read_done = rem_read(a_conn, 64, 9)
    assert cluster.run(read_done) == b"published"


def test_rem_read_bounds_checked():
    cluster = make_cluster()
    a_conn, _ = cluster.connect("alice", "bob")
    with pytest.raises(ValueError):
        rem_read(a_conn, -1, 4)


def test_local_send_and_verify_roundtrip():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")

    def run():
        msg = yield local_send(a_conn, b"log-entry")
        ok = yield local_verify(b_conn, msg)
        return msg, ok

    msg, ok = cluster.run(cluster.sim.process(run()))
    assert ok is True
    assert isinstance(msg, AttestedMessage)


def test_local_verify_rejects_forgery():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")

    def run():
        msg = yield local_send(a_conn, b"entry")
        forged = AttestedMessage(
            payload=b"forged", alpha=msg.alpha, session_id=msg.session_id,
            device_id=msg.device_id, counter=msg.counter,
        )
        ok = yield local_verify(b_conn, forged)
        return ok

    assert cluster.run(cluster.sim.process(run())) is False


def test_equivocation_free_multicast_pattern():
    """local_send() once, unicast the identical attested message (§6.1)."""
    cluster = make_cluster(("leader", "f1", "f2"))
    # All followers share the leader's session key via separate conns.
    c1, f1 = cluster.connect("leader", "f1")
    c2, f2 = cluster.connect("leader", "f2")

    def run():
        msg = yield local_send(c1, b"decision")
        ok1 = yield local_verify(f1, msg)
        return msg, ok1

    msg, ok1 = cluster.run(cluster.sim.process(run()))
    assert ok1 is True
    # A different session cannot verify it (keys differ per session).
    def run2():
        ok = yield local_verify(f2, msg)
        return ok

    assert cluster.run(cluster.sim.process(run2())) is False


def test_ibv_sync_validation():
    cluster = make_cluster(("a", "b", "c"))
    sid, key = cluster.sessions.new_session()
    for name in ("a", "b", "c"):
        cluster[name].device.install_session(sid, key)
    conn_ab = cluster["a"].ibv_qp_conn(cluster["b"].ip, sid)
    conn_ca = cluster["c"].ibv_qp_conn(cluster["a"].ip, sid)
    with pytest.raises(ValueError, match="point at each other"):
        ibv_sync(conn_ab, conn_ca)


def test_session_directory_unique_sessions():
    directory = SessionDirectory()
    s1, k1 = directory.new_session()
    s2, k2 = directory.new_session()
    assert s1 != s2
    assert k1 != k2
    assert len(k1) == 32


def test_cluster_rejects_duplicate_names():
    with pytest.raises(ValueError):
        Cluster(["x", "x"])


def test_stage_wraps_cursor():
    cluster = make_cluster()
    a_conn, _ = cluster.connect("alice", "bob", region_bytes=4096)
    # tx region is one huge page; force wrap by staging beyond the end.
    a_conn._tx_cursor = a_conn.tx_region.size - 8
    address = a_conn.stage(b"0123456789abcdef")
    assert address == a_conn.tx_region.base


def test_bidirectional_auth_send():
    cluster = make_cluster()
    a_conn, b_conn = cluster.connect("alice", "bob")
    ca = auth_send(a_conn, b"ping")
    cb = auth_send(b_conn, b"pong")
    cluster.run(ca)
    cluster.run(cb)
    cluster.run()
    assert recv(b_conn)["payload"] == b"ping"
    assert recv(a_conn)["payload"] == b"pong"
