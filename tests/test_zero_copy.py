"""Zero-copy packet bodies and batched verification (ISSUE 9).

Property under test: a payload that travels as :class:`memoryview`
slices is byte-for-byte the payload — at segmentation, on the wire,
and after reassembly — and anything that differs (type at the digest
boundary, verification outcomes, failure reporting) fails identically
to the all-``bytes`` path.
"""

from __future__ import annotations

import pytest

from repro.core import TnicDevice
from repro.crypto.hashing import canonical_bytes
from repro.crypto.hmac_engine import (
    batch_verify,
    hmac_sha256,
    hmac_verify,
    reset_verification_cache,
    verification_cache_stats,
)
from repro.net import ArpServer, Link, NetworkFault
from repro.net.body import as_view, join, materialize, segment
from repro.roce import QueuePair
from repro.sim import DeterministicRng, Simulator

KEY = b"zero-copy-key-0123456789abcdef!!"
SESSION = 9


def build_pair(fault=None, mtu=512, rng_seed=0):
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp, trusted=True)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp, trusted=True)
    a.roce.path_mtu = mtu
    b.roce.path_mtu = mtu
    Link(sim, a.mac, b.mac, fault=fault, rng=DeterministicRng(rng_seed, "l"))
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    return sim, a, b


# ---------------------------------------------------------------- body helpers


def test_as_view_is_zero_copy_and_idempotent():
    buf = b"0123456789"
    view = as_view(buf)
    assert type(view) is memoryview
    assert view.obj is buf          # aliases, doesn't copy
    assert as_view(view) is view    # idempotent


def test_materialize_passes_bytes_through_and_copies_views_once():
    buf = b"abcdef"
    assert materialize(buf) is buf          # no gratuitous copy
    out = materialize(memoryview(buf)[1:4])
    assert type(out) is bytes
    assert out == b"bcd"


def test_join_accepts_mixed_views_and_bytes():
    buf = b"hello world"
    chunks = [memoryview(buf)[:5], b" ", memoryview(buf)[6:]]
    assert join(chunks) == b"hello world"


def test_segment_fast_path_returns_the_payload_itself():
    payload = b"x" * 512
    chunks = segment(payload, 512)
    assert chunks == [payload]
    assert chunks[0] is payload     # no view, no copy for <= MTU


def test_segment_slices_alias_one_buffer_and_reassemble_exactly():
    payload = bytes(range(256)) * 9  # 2304 B
    chunks = segment(payload, 1000)
    assert len(chunks) == 3
    for chunk in chunks:
        assert type(chunk) is memoryview
        assert chunk.obj is payload  # every slice aliases the original
    assert [len(chunk) for chunk in chunks] == [1000, 1000, 304]
    assert join(chunks) == payload


# ----------------------------------------------------- layer-boundary property


def test_wire_segments_equal_payload_slices_at_every_boundary():
    """Tap the link: each in-flight body equals its slice of the
    original payload, and at least one travels as a view."""
    taps: list = []

    def wire_tap(pkt):
        if pkt.payload and pkt.meta.get("segments"):
            taps.append(pkt.payload)
        return None

    sim, a, b = build_pair(fault=NetworkFault(tamper=wire_tap), mtu=512)
    payload = bytes(range(256)) * 7  # 1792 B -> 4 segments
    sim.run(a.send(1, payload))
    sim.run()

    assert any(type(body) is memoryview for body in taps)
    rebuilt = join(taps[:4])
    assert rebuilt == payload
    offset = 0
    for body in taps[:4]:
        assert materialize(body) == payload[offset : offset + len(body)]
        offset += len(body)

    items = b.drain(2)
    assert [item["payload"] for item in items] == [payload]
    # The digest boundary materialized: delivered payload is real bytes.
    assert type(items[0]["payload"]) is bytes
    assert type(items[0]["message"].payload) is bytes


def test_single_segment_messages_stay_bytes_end_to_end():
    taps: list = []

    def wire_tap(pkt):
        if pkt.payload and pkt.trailer is not None:
            taps.append(pkt.payload)
        return None

    sim, a, b = build_pair(fault=NetworkFault(tamper=wire_tap), mtu=1024)
    payload = b"s" * 300
    sim.run(a.send(1, payload))
    sim.run()
    assert taps and all(type(body) is bytes for body in taps)
    assert taps[0] is payload  # zero copies anywhere on the tx path
    assert b.drain(2)[0]["payload"] == payload


# --------------------------------------------------------- failure-path parity


def _run_tampered(mtu, payload, flip_packet_index):
    """Flip the first byte of the N-th data packet; return (delivered,
    failures)."""
    state = {"seen": 0}

    def tamper(pkt):
        # The trailer rides only the LAST segment; count every
        # data-carrying packet so middle segments are reachable.
        if pkt.payload and (pkt.trailer is not None
                            or pkt.meta.get("segments")):
            state["seen"] += 1
            if state["seen"] == flip_packet_index:
                body = materialize(pkt.payload)
                return pkt.with_payload(
                    bytes([body[0] ^ 0xFF]) + body[1:]
                )
        return None

    sim, a, b = build_pair(fault=NetworkFault(tamper=tamper), mtu=mtu)
    sim.run(a.send(1, payload))
    sim.run()
    items = b.drain(2)
    return [item["payload"] for item in items], b.roce.verification_failures


def test_tampered_view_body_fails_and_recovers_like_bytes_body():
    """A corrupted *sliced* body must be detected and reported exactly
    like a corrupted plain-``bytes`` body: >=1 verification failure,
    then go-back-N recovery delivers the genuine payload."""
    payload = b"Z" * 1500
    # bytes path: single-segment message (mtu 2048), tamper packet 1
    delivered_bytes, failures_bytes = _run_tampered(2048, payload, 1)
    # view path: 3 segments (mtu 512), tamper the middle segment
    delivered_views, failures_views = _run_tampered(512, payload, 2)
    assert delivered_bytes == [payload]
    assert delivered_views == [payload]
    assert failures_bytes >= 1
    assert failures_views >= 1


# ------------------------------------------------------------- digest boundary


def test_hashing_refuses_memoryview_loudly():
    with pytest.raises(TypeError, match="digest boundary"):
        canonical_bytes((memoryview(b"leaked view"),))
    with pytest.raises(TypeError, match="materialize"):
        hmac_sha256(KEY, memoryview(b"leaked view"))


# --------------------------------------------------------------- batch_verify


def test_batch_verify_matches_hmac_verify_per_job():
    reset_verification_cache()
    keys = [b"k1" * 16, b"k2" * 16]
    jobs = []
    expected = []
    for index in range(10):
        key = keys[index % 2]
        parts = (b"payload-%d" % index, index, 7, 1)
        mac = hmac_sha256(key, *parts)
        if index % 3 == 0:  # forge every third MAC
            mac = bytes(32)
        jobs.append((key, mac, parts))
        expected.append(index % 3 != 0)
    assert batch_verify(jobs) == expected
    # The serial path agrees job-for-job (and now hits the cache).
    for (key, mac, parts), want in zip(jobs, expected):
        assert hmac_verify(key, mac, *parts) is want
    reset_verification_cache()


def test_batch_verify_populates_the_shared_cache():
    reset_verification_cache()
    key = b"\x11" * 32
    jobs = [
        (key, hmac_sha256(key, b"m%d" % index, index), (b"m%d" % index, index))
        for index in range(8)
    ]
    first = verification_cache_stats()
    assert batch_verify(jobs) == [True] * 8
    after_miss = verification_cache_stats()
    assert after_miss["misses"] - first["misses"] == 8
    assert after_miss["entries"] - first["entries"] == 8
    assert batch_verify(jobs) == [True] * 8   # steady state: all hits
    after_hit = verification_cache_stats()
    assert after_hit["hits"] - after_miss["hits"] == 8
    assert after_hit["misses"] == after_miss["misses"]
    reset_verification_cache()


def test_batch_verify_empty_and_invalid_key():
    assert batch_verify([]) == []
    with pytest.raises(ValueError, match="non-empty bytes"):
        batch_verify([(b"", b"\x00" * 32, (b"m",))])
    with pytest.raises(ValueError, match="non-empty bytes"):
        batch_verify([("not-bytes", b"\x00" * 32, (b"m",))])
