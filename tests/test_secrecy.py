"""Tests for the Appendix-B secrecy lemmas (Dolev–Yao closure)."""

from repro.verification.secrecy import (
    Atom,
    BITSTREAM,
    HW_KEY,
    Kdf,
    Mac,
    Pair,
    Pub,
    SEnc,
    SESSION_KEY,
    bitstream_secret,
    hw_key_secret,
    protocol_run_observations,
    saturate,
    session_key_secret,
)


# ---------------------------------------------------------------------------
# Closure engine
# ---------------------------------------------------------------------------

def test_unpairing():
    a, b = Atom("a"), Atom("b")
    knowledge = saturate([Pair(a, b)])
    assert a in knowledge and b in knowledge


def test_decrypt_with_known_key():
    m, k = Atom("m"), Atom("k")
    assert m in saturate([SEnc(m, k), k])
    assert m not in saturate([SEnc(m, k)])


def test_nested_decryption():
    m, k1, k2 = Atom("m"), Atom("k1"), Atom("k2")
    layered = SEnc(SEnc(m, k2), k1)
    assert m in saturate([layered, k1, k2])
    assert m not in saturate([layered, k1])


def test_mac_reveals_nothing():
    m, k = Atom("m"), Atom("k")
    knowledge = saturate([Mac(m, k)])
    assert m not in knowledge and k not in knowledge


def test_kdf_reconstructed_only_with_all_inputs():
    a, b = Atom("a"), Atom("b")
    key = Kdf((a, b))
    assert key in saturate([SEnc(Atom("m"), key), a, b])
    assert key not in saturate([SEnc(Atom("m"), key), a])


def test_pub_is_one_way():
    x = Atom("x")
    assert x not in saturate([Pub(x)])
    assert Pub(x) in saturate([SEnc(Atom("m"), Pub(x)), x])


def test_kdf_key_opens_ciphertext():
    a, b, m = Atom("a"), Atom("b"), Atom("m")
    key = Kdf((a, b))
    assert m in saturate([SEnc(m, key), a, b])


# ---------------------------------------------------------------------------
# Protocol lemmas
# ---------------------------------------------------------------------------

def test_hw_key_priv_secret():
    assert hw_key_secret()


def test_session_key_secret():
    assert session_key_secret()


def test_session_key_forward_secrecy():
    """'past symmetric keys stay secret even if the hardware key is
    compromised in the future after the session is completed.'"""
    assert session_key_secret(compromise_hw_key_later=True)


def test_bitstream_secret():
    assert bitstream_secret()
    assert bitstream_secret(compromise_hw_key_later=True)


# ---------------------------------------------------------------------------
# Broken variants: the analysis must detect real leaks
# ---------------------------------------------------------------------------

def test_key_on_wire_leaks_bitstream():
    assert not bitstream_secret(weaken_key_on_wire=True)


def test_kdf_from_hw_key_breaks_forward_secrecy():
    """If the session key were derived from the hardware key, a later
    compromise would reveal past sessions."""
    assert not session_key_secret(
        compromise_hw_key_later=True, weaken_kdf_from_hw_key=True
    )
    # Without the compromise the weak KDF is still (barely) fine.
    assert session_key_secret(weaken_kdf_from_hw_key=True)


def test_observed_wire_terms_never_include_raw_secrets():
    wire = protocol_run_observations()
    assert HW_KEY not in wire
    assert SESSION_KEY not in wire
    assert BITSTREAM not in wire
