"""Tests for the RC send window (flow control)."""

import pytest

from repro.core import TnicDevice
from repro.net import ArpServer, Link
from repro.roce import QueuePair
from repro.sim import Simulator

KEY = b"flow-control-key-0123456789abcd!"
SESSION = 5


def build_pair(window=4, mtu=4096):
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp)
    a.roce.send_window = window
    a.roce.path_mtu = mtu
    b.roce.path_mtu = mtu
    Link(sim, a.mac, b.mac)
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    return sim, a, b


def test_window_never_exceeded():
    sim, a, b = build_pair(window=3)
    state = a.roce.tables.get(1)
    max_inflight = {"n": 0}

    original_record = state.record_send

    def spying_record(packet, now):
        psn = original_record(packet, now)
        max_inflight["n"] = max(max_inflight["n"], len(state.inflight))
        return psn

    state.record_send = spying_record
    completions = [a.send(1, f"m{i}".encode()) for i in range(20)]
    for completion in completions:
        sim.run(completion)
    sim.run()
    assert max_inflight["n"] <= 3
    assert [i["payload"] for i in b.drain(2)] == [
        f"m{i}".encode() for i in range(20)
    ]


def test_backlog_drains_in_order():
    sim, a, b = build_pair(window=2)
    payloads = [f"ordered-{i}".encode() for i in range(12)]
    completions = [a.send(1, p) for p in payloads]
    for completion in completions:
        sim.run(completion)
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_oversized_message_progresses_when_window_empty():
    """A message with more segments than the window still transmits
    once the wire is idle."""
    sim, a, b = build_pair(window=2, mtu=512)
    payload = b"L" * 3000  # 6 segments > window of 2
    completion = a.send(1, payload)
    sim.run(completion)
    sim.run()
    assert b.drain(2)[0]["payload"] == payload


def test_windowed_pipelining_still_faster_than_serial():
    import time

    sim, a, b = build_pair(window=16)
    completions = [a.send(1, b"x" * 64) for _ in range(30)]
    for completion in completions:
        sim.run(completion)
    pipelined_time = sim.now

    sim2, a2, b2 = build_pair(window=16)
    for i in range(30):
        sim2.run(a2.send(1, b"x" * 64))
    serial_time = sim2.now
    assert pipelined_time < serial_time
