"""Tests for the TEE-hosted CFT baselines: TEEs-Raft and TEEs-CR (§8.3)."""

import pytest

from repro.systems.chain import ChainReplication, KvRequest
from repro.systems.cr_cft import TeeChainReplication
from repro.systems.bft import BftCounter
from repro.systems.raft import TeeRaft


# ---------------------------------------------------------------------------
# TEEs-Raft
# ---------------------------------------------------------------------------

def test_raft_commits_all_commands():
    raft = TeeRaft(nodes=3)
    metrics = raft.run_workload(commands=10)
    assert metrics.committed == 10
    assert raft.logs_consistent()
    leader = raft.nodes[raft.leader_name]
    assert leader.commit_index == 10
    assert leader.applied == [f"cmd{i}" for i in range(10)]


def test_raft_followers_replicate_leader_log():
    raft = TeeRaft(nodes=3)
    raft.run_workload(commands=5)
    leader_log = [e.command for e in raft.nodes[raft.leader_name].log]
    for name in raft.followers:
        follower_log = [e.command for e in raft.nodes[name].log]
        assert follower_log == leader_log


def test_raft_five_nodes():
    raft = TeeRaft(nodes=5)
    metrics = raft.run_workload(commands=4)
    assert metrics.committed == 4
    assert raft.logs_consistent()


def test_raft_pipeline_improves_throughput():
    serial = TeeRaft(nodes=3, pipeline_depth=1).run_workload(10)
    deep = TeeRaft(nodes=3, pipeline_depth=8).run_workload(10)
    assert deep.throughput_ops > 1.5 * serial.throughput_ops


def test_raft_node_count_validated():
    with pytest.raises(ValueError):
        TeeRaft(nodes=2)
    with pytest.raises(ValueError):
        TeeRaft(nodes=4)
    with pytest.raises(ValueError):
        TeeRaft(nodes=3, pipeline_depth=0)


def test_raft_beats_tnic_bft():
    """§8.3: 'TEE-Raft achieves approximately 2.5x higher throughput
    than TNIC-based BFT ... primarily due to Raft's one-phase
    commitment' — measured under pipelined load, where the BFT leader's
    per-request attestation work is the bottleneck."""
    raft = TeeRaft(nodes=3, pipeline_depth=8).run_workload(40)
    bft = BftCounter("tnic", batch=1).run_workload(40, pipeline_depth=8)
    ratio = raft.throughput_ops / bft.throughput_ops
    assert 1.5 <= ratio <= 4.0, f"ratio={ratio}"


# ---------------------------------------------------------------------------
# TEEs-CR
# ---------------------------------------------------------------------------

def puts(n):
    return [KvRequest("put", f"k{i}", f"v{i}") for i in range(n)]


def test_cft_chain_replicates_and_tail_replies():
    chain = TeeChainReplication(chain_length=3)
    metrics = chain.run_workload(puts(5))
    assert metrics.committed == 5
    assert chain.stores_consistent()
    assert chain.nodes["tail"].store == {f"k{i}": f"v{i}" for i in range(5)}


def test_cft_chain_length_validated():
    with pytest.raises(ValueError):
        TeeChainReplication(chain_length=1)


def test_cft_chain_beats_byzantine_chain():
    """§8.3: 'TEE-CR achieves 2x higher throughput than the TNIC-based
    CR' — same RTTs, fewer attestation-kernel invocations."""
    cft = TeeChainReplication(chain_length=3).run_workload(puts(8))
    bft = ChainReplication("tnic", chain_length=3).run_workload(puts(8))
    ratio = cft.throughput_ops / bft.throughput_ops
    assert 1.3 <= ratio <= 3.5, f"ratio={ratio}"


def test_raft_log_repair_after_lossy_isolation():
    """A follower whose traffic was *dropped* (crash/restart) is
    repaired by the leader's next_index walk-back: it ends with the
    full committed log after more commands flow."""
    raft = TeeRaft(nodes=3)
    raft.network.isolate({"n2"}, mode="drop")
    raft.run_workload(commands=3)
    assert raft.nodes["n2"].log == []  # missed everything
    raft.network.heal()
    raft.run_workload(commands=3)
    raft.sim.run()  # drain repair traffic
    n2_log = [e.command for e in raft.nodes["n2"].log]
    leader_log = [e.command for e in raft.nodes[raft.leader_name].log]
    assert n2_log == leader_log
    assert raft.logs_consistent()


def test_raft_commits_despite_one_lossy_follower():
    """Majority (leader + one follower) keeps committing while the
    third node's traffic is dropped."""
    raft = TeeRaft(nodes=3)
    raft.network.isolate({"n1"}, mode="drop")
    metrics = raft.run_workload(commands=4)
    assert metrics.committed == 4
    assert raft.network.dropped_messages > 0
