"""Partition / heal tests: safety under network splits (§C.3/§C.4).

"Even in the extreme case of a network partition or a faulty leader
that purposely excludes some healthy replicas ... when the network is
restored, these replicas will not accept any future messages unless
they receive all missed ones." — the reliable substrate holds traffic
toward isolated nodes and flushes it on heal, and the protocols resume
without losing or double-applying anything.
"""

import pytest

from repro.bench import kv_workload
from repro.systems.bft import BftCounter
from repro.systems.chain import ChainReplication, KvRequest
from repro.systems.common import EmulatedNetwork
from repro.sim import Simulator


def test_isolate_holds_and_heal_flushes():
    sim = Simulator()
    net = EmulatedNetwork(sim)
    inbox = net.register("n")
    net.isolate({"n"})
    net.send("n", "held-1")
    net.send("n", "held-2")
    sim.run()
    assert len(inbox) == 0
    assert net.held_messages == 2
    net.heal()
    sim.run()
    assert inbox.try_get() == "held-1"
    assert inbox.try_get() == "held-2"


def test_isolate_unknown_node_rejected():
    net = EmulatedNetwork(Simulator())
    with pytest.raises(KeyError):
        net.isolate({"ghost"})


def test_chain_stalls_during_partition_and_recovers():
    system = ChainReplication("tnic", chain_length=3)
    system.network.isolate({"mid0"})
    # Heal the partition after 5 ms of virtual time.
    system.sim.delayed_call(5_000.0, system.network.heal)
    metrics = system.run_workload(
        [KvRequest("put", "k", "v")], timeout_us=50_000.0
    )
    assert not system.aborted
    assert metrics.committed == 1
    # The commit had to wait out the partition.
    assert metrics.latencies_us[0] >= 5_000.0
    stores = [node.store for node in system.nodes.values()]
    assert all(store == {"k": "v"} for store in stores)


def test_bft_follower_partition_does_not_block_commit():
    """With f=1, isolating one follower leaves a commit quorum."""
    system = BftCounter("tnic", f=1)
    system.network.isolate({"r2"})
    metrics = system.run_workload(batches=2, timeout_us=100_000.0)
    assert metrics.committed == 2
    assert not system.aborted


def test_bft_partitioned_follower_catches_up_after_heal():
    """The healed follower receives all missed messages in order and
    converges on the same state (no skipped counters)."""
    system = BftCounter("tnic", f=1)
    system.network.isolate({"r2"})
    system.sim.delayed_call(8_000.0, system.network.heal)
    system.run_workload(batches=3, timeout_us=100_000.0)
    system.sim.run()  # let the flushed traffic drain
    assert system.replicas["r2"].counter == 3
    assert system.detected_faults() == {}


def test_chain_partition_workload_after_heal():
    system = ChainReplication("tnic", chain_length=3)
    system.network.isolate({"tail"})
    system.sim.delayed_call(3_000.0, system.network.heal)
    metrics = system.run_workload(kv_workload(3, seed=2), timeout_us=60_000.0)
    assert metrics.committed == 3
    assert not system.aborted
