"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "forged message accepted: False" in out


def test_lemmas_command(capsys):
    assert main(["lemmas", "--sends", "2", "--depth", "5"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "VIOLATED" not in out
    assert "S_key_secret" in out


def test_attack_command(capsys):
    assert main(["attack", "--attempts", "10"]) == 0
    out = capsys.readouterr().out
    assert "defended" in out
    assert "BREACHED" not in out


def test_resources_command(capsys):
    assert main(["resources"]) == 0
    out = capsys.readouterr().out
    assert "32" in out
    assert "RAMB36" in out


def test_stacks_command(capsys):
    assert main(["stacks", "--ops", "5"]) == 0
    out = capsys.readouterr().out
    assert "TNIC" in out and "RDMA-hw" in out


def test_systems_command(capsys):
    assert main(["systems", "--ops", "3"]) == 0
    out = capsys.readouterr().out
    assert "BFT counter" in out and "tnic" in out


def test_lint_command_clean_tree(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out


def test_lint_command_json_format(capsys):
    import json

    assert main(["lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 0


def test_lint_command_flags_violations_with_location(tmp_path, capsys):
    fixture = tmp_path / "repro" / "core"
    fixture.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (fixture / "__init__.py").write_text("")
    (fixture / "bad.py").write_text(
        "import random\n"
        "import time\n"
        "from repro.systems.bft import BftCounter\n\n"
        "def proc(sim):\n"
        "    time.sleep(random.random() + time.time())\n"
        "    yield sim.timeout(1.0)\n"
    )
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    for rule in ("DET001", "DET003", "BND001", "SIM001"):
        assert rule in out
    assert "bad.py:6" in out


def test_lint_command_update_baseline_then_clean(tmp_path, capsys):
    module = tmp_path / "legacy.py"
    module.write_text("import time\nNOW = time.time()\n")
    baseline = tmp_path / "accepted.json"
    assert main(["lint", str(module), "--update-baseline",
                 "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    capsys.readouterr()
    assert main(["lint", str(module), "--baseline", str(baseline)]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_command_rejects_missing_path(capsys):
    assert main(["lint", "/nonexistent/path.py"]) == 2


def test_lint_command_sarif_format(capsys):
    import json

    assert main(["lint", "--format", "sarif"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"] == []


def test_lint_command_sarif_file_with_findings(tmp_path, capsys):
    import json

    module = tmp_path / "bad.py"
    module.write_text("import time\nNOW = time.time()\n")
    sarif_path = tmp_path / "out" / "lint.sarif"
    assert main(["lint", str(module), "--sarif", str(sarif_path)]) == 1
    document = json.loads(sarif_path.read_text())
    results = document["runs"][0]["results"]
    assert results and results[0]["ruleId"] == "DET001"
    assert "SARIF written" in capsys.readouterr().out


def test_lint_command_explain_known_and_unknown_rule(capsys):
    assert main(["lint", "--explain", "SEC001"]) == 0
    out = capsys.readouterr().out
    assert "SEC001" in out and "key" in out.lower()
    assert main(["lint", "--explain", "TNT001"]) == 0
    capsys.readouterr()
    assert main(["lint", "--explain", "SHD001"]) == 0
    assert "cross_shard" in capsys.readouterr().out
    assert main(["lint", "--explain", "NOPE999"]) == 2
    err = capsys.readouterr().err
    assert "no such rule: NOPE999" in err
    # The usage hint lists every shipped rule-ID prefix.
    for prefix in ("DET", "SIM", "BND", "SEC", "TNT", "RACE", "SHD"):
        assert prefix in err


def _write_shard_fixture(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "leaky.py").write_text(
        "import time\n"
        "NOW = time.time()\n"
        "class System:\n"
        "    def __init__(self, names):\n"
        "        self.latest = None\n"
        "        self.nodes = [Node(n, self) for n in names]\n"
        "\n"
        "class Node:\n"
        "    def __init__(self, name, system):\n"
        "        self.system = system\n"
        "        self.log = []\n"
        "\n"
        "    def run(self, sim):\n"
        "        yield sim.timeout(1)\n"
        "        self.system.latest = self.log\n"
    )
    return tmp_path


def test_lint_command_jobs_matches_serial_output(tmp_path, capsys):
    import json

    target = str(_write_shard_fixture(tmp_path))
    assert main(["lint", target, "--format", "json"]) == 1
    serial = json.loads(capsys.readouterr().out)
    assert main(["lint", target, "--format", "json", "--jobs", "4"]) == 1
    parallel = json.loads(capsys.readouterr().out)
    assert parallel == serial
    # Findings from two different pass groups survive the merge.
    assert {f["rule"] for f in serial["findings"]} >= {"DET001", "SHD001"}


def test_lint_command_jobs_on_clean_tree(capsys):
    assert main(["lint", "--jobs", "4"]) == 0
    assert "clean" in capsys.readouterr().out


def test_lint_command_partition_manifest(tmp_path, capsys):
    import json

    out_path = tmp_path / "results" / "partition_manifest.json"
    assert main(["lint", "--partition-manifest", str(out_path)]) == 0
    printed = capsys.readouterr().out
    assert "partition manifest written" in printed
    manifest = json.loads(out_path.read_text())
    systems = manifest["systems"]
    assert set(systems) == {"bft", "chain", "a2m", "peer_review"}
    assert systems["chain"]["shardable"] is True
    assert systems["a2m"]["shardable"] is True
    assert systems["peer_review"]["shardable"] is False
    for system in systems.values():
        assert set(system) >= {"modules", "classes", "state",
                               "cross_shard_edges", "blocking_findings",
                               "shardable"}


def test_lint_command_prune_baseline_flow(tmp_path, capsys):
    import json

    module = tmp_path / "legacy.py"
    module.write_text("import time\nNOW = time.time()\n")
    baseline = tmp_path / "accepted.json"
    assert main(["lint", str(module), "--update-baseline",
                 "--baseline", str(baseline)]) == 0

    # Nothing stale while the offending line is still present.
    assert main(["lint", str(module), "--prune-baseline", "--dry-run",
                 "--baseline", str(baseline)]) == 0

    # Fix the file: the entry goes stale; dry-run reports (exit 1),
    # the real prune rewrites the baseline (exit 0).
    module.write_text("NOW = 0.0\n")
    capsys.readouterr()
    assert main(["lint", str(module), "--prune-baseline", "--dry-run",
                 "--baseline", str(baseline)]) == 1
    assert "stale" in capsys.readouterr().out
    assert main(["lint", str(module), "--prune-baseline",
                 "--baseline", str(baseline)]) == 0
    assert json.loads(baseline.read_text())["findings"] == []
    assert main(["lint", str(module), "--prune-baseline", "--dry-run",
                 "--baseline", str(baseline)]) == 0


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
