"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_demo_command(capsys):
    assert main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "delivered" in out
    assert "forged message accepted: False" in out


def test_lemmas_command(capsys):
    assert main(["lemmas", "--sends", "2", "--depth", "5"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "VIOLATED" not in out
    assert "S_key_secret" in out


def test_attack_command(capsys):
    assert main(["attack", "--attempts", "10"]) == 0
    out = capsys.readouterr().out
    assert "defended" in out
    assert "BREACHED" not in out


def test_resources_command(capsys):
    assert main(["resources"]) == 0
    out = capsys.readouterr().out
    assert "32" in out
    assert "RAMB36" in out


def test_stacks_command(capsys):
    assert main(["stacks", "--ops", "5"]) == 0
    out = capsys.readouterr().out
    assert "TNIC" in out and "RDMA-hw" in out


def test_systems_command(capsys):
    assert main(["systems", "--ops", "3"]) == 0
    out = capsys.readouterr().out
    assert "BFT counter" in out and "tnic" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bogus"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
