"""Tests for Byzantine Chain Replication (Appendix C.4, Algorithm 4)."""

import pytest

from repro.systems.chain import (
    ChainBehaviour,
    ChainReplication,
    KvRequest,
)


def puts(n):
    return [KvRequest("put", f"k{i}", f"v{i}") for i in range(n)]


def test_happy_path_replicates_puts_everywhere():
    system = ChainReplication("tnic", chain_length=3)
    metrics = system.run_workload(puts(5))
    assert metrics.committed == 5
    assert not system.aborted
    stores = [node.store for node in system.nodes.values()]
    assert all(store == {f"k{i}": f"v{i}" for i in range(5)} for store in stores)
    assert system.detected_faults() == {}


def test_gets_traverse_entire_chain():
    """BFT CR: reads cannot be served by the tail alone."""
    system = ChainReplication("tnic", chain_length=3)
    requests = [KvRequest("put", "x", "42"), KvRequest("get", "x")]
    metrics = system.run_workload(requests)
    assert metrics.committed == 2
    # Every node executed both operations.
    assert all(node.commit_index == 2 for node in system.nodes.values())


def test_get_missing_key():
    system = ChainReplication("tnic", chain_length=2)
    metrics = system.run_workload([KvRequest("get", "nope")])
    assert metrics.committed == 1


def test_corrupt_middle_detected_and_blocks_commit():
    """A middle node forging its output is exposed by the next node's
    chained validation; the client never sees N identical replies."""
    system = ChainReplication(
        "tnic", chain_length=3,
        behaviours={"mid0": ChainBehaviour(corrupt_output=True)},
    )
    system.run_workload(puts(1), timeout_us=30_000.0)
    assert system.aborted
    faults = system.detected_faults()
    assert "tail" in faults
    assert any("output" in fault for fault in faults["tail"])


def test_corrupt_head_detected_by_first_verifier():
    system = ChainReplication(
        "tnic", chain_length=3,
        behaviours={"head": ChainBehaviour(corrupt_output=True)},
    )
    system.run_workload(puts(1), timeout_us=30_000.0)
    assert system.aborted
    faults = system.detected_faults()
    assert "mid0" in faults


def test_drop_forward_blocks_commit():
    """A node silently dropping the chain message prevents commitment
    (clients detect non-responsiveness and would reconfigure)."""
    system = ChainReplication(
        "tnic", chain_length=3,
        behaviours={"mid0": ChainBehaviour(drop_forward=True)},
    )
    system.run_workload(puts(1), timeout_us=30_000.0)
    assert system.aborted


def test_longer_chains_supported():
    system = ChainReplication("tnic", chain_length=5)
    metrics = system.run_workload(puts(2))
    assert metrics.committed == 2
    assert len(system.nodes) == 5


def test_chain_length_validation():
    with pytest.raises(ValueError):
        ChainReplication(chain_length=1)


def test_tnic_faster_than_tee_versions():
    """Fig 11: TNIC is ~5x faster than SGX and ~3.4x than AMD-sev."""
    results = {
        name: ChainReplication(name, seed=1).run_workload(puts(6))
        for name in ("tnic", "sgx", "amd-sev", "ssl-lib", "ssl-server")
    }
    tnic = results["tnic"].throughput_ops
    assert tnic > 1.5 * results["sgx"].throughput_ops
    assert tnic > 1.3 * results["amd-sev"].throughput_ops
    assert results["ssl-lib"].throughput_ops > tnic
    # "it is 30% faster than SSL-server, which is not tamper-proof"
    assert tnic > results["ssl-server"].throughput_ops


def test_invalid_op_rejected():
    system = ChainReplication("tnic", chain_length=2)
    with pytest.raises(ValueError):
        system.nodes["head"].execute(KvRequest("del", "x"))


def test_quorum_reads_return_replicated_value():
    system = ChainReplication("tnic", chain_length=3)
    requests = [
        KvRequest("put", "k", "v1"),
        KvRequest("get", "k"),
        KvRequest("put", "k", "v2"),
        KvRequest("get", "k"),
    ]
    metrics = system.run_workload(requests, read_mode="quorum")
    assert metrics.committed == 4
    assert not system.aborted
    assert all(node.store == {"k": "v2"} for node in system.nodes.values())


def test_quorum_reads_are_faster_than_chain_reads():
    """The Appendix-C.4 trade-off: a broadcast round beats traversing
    the chain for read-heavy workloads."""
    reads = [KvRequest("put", "k", "v")] + [KvRequest("get", "k")] * 6
    chain_mode = ChainReplication("tnic", chain_length=3, seed=3)
    chain_metrics = chain_mode.run_workload(reads, read_mode="chain")
    quorum_mode = ChainReplication("tnic", chain_length=3, seed=3)
    quorum_metrics = quorum_mode.run_workload(reads, read_mode="quorum")
    assert quorum_metrics.throughput_ops > 1.2 * chain_metrics.throughput_ops


def test_quorum_read_detects_diverging_replica():
    """A replica serving stale/corrupt reads denies the quorum."""
    system = ChainReplication(
        "tnic", chain_length=3,
        behaviours={"mid0": ChainBehaviour(corrupt_output=True)},
    )
    system.run_workload([KvRequest("put", "k", "v")], timeout_us=30_000.0)
    # The write is blocked by mid0's corruption; reset to a clean system
    # and corrupt only the read path via direct store tampering.
    system = ChainReplication("tnic", chain_length=3)
    system.run_workload([KvRequest("put", "k", "v")])
    system.nodes["mid0"].store["k"] = "tampered"
    system.run_workload([KvRequest("get", "k")], read_mode="quorum",
                        timeout_us=20_000.0)
    assert system.aborted  # no unanimous quorum over the read value


def test_invalid_read_mode_rejected():
    system = ChainReplication("tnic", chain_length=2)
    with pytest.raises(ValueError, match="read_mode"):
        system.run_workload([KvRequest("get", "x")], read_mode="wild")
