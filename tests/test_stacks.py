"""Tests for the §8.2 network-stack models (Figures 8-9 shapes)."""

import pytest

from repro.sim import Simulator
from repro.sim import latency as cal
from repro.stacks import (
    ALL_STACKS,
    make_stack,
    measure_latency,
    measure_throughput,
)
from repro.stacks.variants import DrctIoStack, RdmaHwStack, TnicStack


def test_make_stack_and_unknown():
    sim = Simulator()
    for name in ALL_STACKS:
        assert make_stack(name, sim).name == name
    with pytest.raises(ValueError):
        make_stack("bogus", sim)


def test_rdma_hw_latency_range():
    """'RDMA-hw still achieves 3x lower latency (5-5.5us)' small,
    'up to 19 us' at 16 KiB."""
    assert 5.0 <= cal.rdma_hw_send_us(64) <= 5.5
    assert 17.0 <= cal.rdma_hw_send_us(16384) <= 19.5


def test_drct_io_latency_range():
    """'minimal latency (16-16.6us) for small packet sizes up to 1 KiB'
    and 'latencies up to 100us' at 16 KiB."""
    assert 16.0 <= cal.drct_io_send_us(64) <= 16.6
    assert 16.0 <= cal.drct_io_send_us(1024) <= 16.6
    assert 90.0 <= cal.drct_io_send_us(16384) <= 110.0


def test_rdma_hw_3x_to_5x_faster_than_drct_io():
    """Fig 9: 'RDMA-hw is 3x-5x faster than DRCT-IO'."""
    for size in (64, 256, 1024, 4096, 16384):
        ratio = cal.drct_io_send_us(size) / cal.rdma_hw_send_us(size)
        assert 2.8 <= ratio <= 6.0, f"size={size}: ratio={ratio}"


def test_tnic_overhead_3x_to_20x_over_rdma_hw():
    """'TNIC offers trusted networking with 3x-20x higher latencies
    than the untrusted RDMA-hw'."""
    small = cal.tnic_send_us(64) / cal.rdma_hw_send_us(64)
    large = cal.tnic_send_us(16384) / cal.rdma_hw_send_us(16384)
    assert 2.8 <= small <= 4.0
    assert 17.0 <= large <= 22.0


def test_tnic_latency_grows_with_size():
    """HMAC 'fundamentally cannot be parallelized': doubling the size
    increases latency monotonically, more steeply at large sizes."""
    sizes = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    lats = [cal.tnic_send_us(s) for s in sizes]
    assert all(b > a for a, b in zip(lats, lats[1:]))
    small_growth = lats[1] / lats[0]
    large_growth = lats[-1] / lats[-2]
    assert large_growth > small_growth


def test_drct_io_att_is_82us_then_collapses():
    """'Compared to DRCT-IO-att (82us), TNIC is up to 5.6x faster.
    DRCT-IO-att reports extreme latencies (2000us or more) for packet
    sizes larger than 521B'."""
    assert cal.drct_io_att_send_us(64) == pytest.approx(82.0, rel=0.02)
    assert cal.drct_io_att_send_us(1024) >= 2000.0
    ratio = cal.drct_io_att_send_us(64) / cal.tnic_send_us(64)
    assert 4.5 <= ratio <= 6.0


def test_tnic_att_cheaper_than_full_tnic():
    for size in (64, 1024, 16384):
        assert cal.tnic_att_send_us(size) < cal.tnic_send_us(size)


def test_measured_latency_matches_model():
    result = measure_latency(RdmaHwStack, 64, operations=50)
    assert result.latency_us == pytest.approx(cal.rdma_hw_send_us(64), rel=0.01)
    assert result.stack == "RDMA-hw"


def test_throughput_exceeds_serial_rate():
    serial = measure_latency(TnicStack, 1024, operations=50)
    pipelined = measure_throughput(TnicStack, 1024, operations=500, outstanding=16)
    assert pipelined.throughput_ops > 1.5 * serial.throughput_ops


def test_throughput_ordering_small_packets():
    """Fig 8: RDMA-hw tops the chart; TNIC pays the HMAC pipeline."""
    results = {
        cls.name: measure_throughput(cls, 512, operations=400)
        for cls in (RdmaHwStack, DrctIoStack, TnicStack)
    }
    assert results["RDMA-hw"].throughput_ops > results["DRCT-IO"].throughput_ops
    assert results["DRCT-IO"].throughput_ops > results["TNIC"].throughput_ops


def test_negative_size_rejected():
    sim = Simulator()
    stack = make_stack("TNIC", sim)
    with pytest.raises(ValueError):
        stack.send(-1)


def test_measurement_describe_formats():
    result = measure_latency(DrctIoStack, 128, operations=10)
    text = result.describe()
    assert "DRCT-IO" in text and "128" in text
