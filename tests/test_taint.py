"""Tests for the interprocedural taint engine and the SEC/TNT rules.

Two layers: engine-level unit tests (summaries, sanitizers, fixpoint,
call resolution) against synthetic modules, and corpus tests against
``tests/fixtures/taint/`` — every seeded violation in ``broken/`` must
be detected (no false negatives) and ``clean/`` must stay silent (the
false-positive guard).  The real tree's cleanliness modulo the shipped
baseline is covered by
``test_analysis.py::test_shipped_codebase_lints_clean_against_baseline``,
which now runs the taint rules too.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    TNIC_MANIFEST,
    TaintEngine,
    TaintManifest,
    analyze_dataflow,
    collect_findings,
    collect_sources,
)
from repro.analysis.dataflow import SinkSpec, SourceSpec, pattern_matches
from repro.analysis.taint import TAINT_RULES
from repro.analysis.walker import parse_file

FIXTURES = Path(__file__).parent / "fixtures" / "taint"


def _write_module(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    current = path.parent
    while current != tmp_path:
        init = current / "__init__.py"
        if not init.exists():
            init.write_text("")
        current = current.parent
    path.write_text(source)
    return path


def _flows(tmp_path, source, manifest=TNIC_MANIFEST, name="repro/sample.py"):
    src = parse_file(_write_module(tmp_path, name, source))
    return analyze_dataflow([src], manifest)


# ----------------------------------------------------------------------
# Engine unit tests
# ----------------------------------------------------------------------

def test_pattern_matches_suffix_and_prefix_forms():
    assert pattern_matches("key_for", "self.keystore.key_for")
    assert pattern_matches("key_for", "key_for")
    assert not pattern_matches("key_for", "monkey_for")
    assert pattern_matches("logging.*", "logging.info")
    assert not pattern_matches("logging.*", "mylogging.info")


def test_direct_source_to_sink_flow(tmp_path):
    flows = _flows(tmp_path, (
        "def leak(store, sid):\n"
        "    print(store.key_for(sid))\n"
    ))
    assert [(f.tag, f.kind, f.line) for f in flows] == [("key", "log", 2)]


def test_assignment_propagates_taint(tmp_path):
    flows = _flows(tmp_path, (
        "def leak(store, sid):\n"
        "    key = store.key_for(sid)\n"
        "    alias = key\n"
        "    print(alias)\n"
    ))
    assert len(flows) == 1 and flows[0].kind == "log"


def test_sanitizer_launders_taint(tmp_path):
    flows = _flows(tmp_path, (
        "def safe(store, sid, payload):\n"
        "    mac = hmac_sha256(store.key_for(sid), payload)\n"
        "    print(mac)\n"
    ))
    assert flows == []


def test_interprocedural_return_propagation(tmp_path):
    flows = _flows(tmp_path, (
        "def fetch(store, sid):\n"
        "    return store.key_for(sid)\n"
        "def leak(store, sid):\n"
        "    print(fetch(store, sid))\n"
    ))
    assert [(f.tag, f.kind, f.line) for f in flows] == [("key", "log", 4)]


def test_interprocedural_param_sink_reports_at_callsite(tmp_path):
    flows = _flows(tmp_path, (
        "def helper(value):\n"
        "    print(value)\n"
        "def leak(store, sid):\n"
        "    helper(store.key_for(sid))\n"
    ))
    assert len(flows) == 1
    flow = flows[0]
    assert flow.line == 4
    assert "helper" in flow.describe_path()


def test_three_hop_chain_converges(tmp_path):
    flows = _flows(tmp_path, (
        "def sink3(v):\n"
        "    print(v)\n"
        "def sink2(v):\n"
        "    sink3(v)\n"
        "def sink1(v):\n"
        "    sink2(v)\n"
        "def leak(store, sid):\n"
        "    sink1(store.key_for(sid))\n"
    ))
    assert any(f.line == 8 for f in flows)


def test_summaries_expose_passthrough_and_tags(tmp_path):
    src = parse_file(_write_module(tmp_path, "repro/sample.py", (
        "def ident(x):\n"
        "    return x\n"
        "def source(store, sid):\n"
        "    return store.key_for(sid)\n"
    )))
    engine = TaintEngine([src], TNIC_MANIFEST)
    engine.run()
    summaries = engine.summaries()
    assert "x" in summaries["repro.sample.ident"].param_to_return
    assert "key" in summaries["repro.sample.source"].return_tags


def test_compare_results_are_untainted(tmp_path):
    # A bool derived from a key must not itself count as key material
    # (otherwise `has_key = sid == 1` style code drowns SEC001 in noise).
    flows = _flows(tmp_path, (
        "def check(store, sid, other):\n"
        "    matches = store.key_for(sid) == other\n"
        "    print(matches)\n"
    ))
    assert [(f.tag, f.kind) for f in flows] == [("key", "compare")]


def test_custom_manifest_is_honoured(tmp_path):
    manifest = TaintManifest(
        sources=(SourceSpec(tag="pw", call="get_password"),),
        sinks=(SinkSpec("pw", "log", "log_line"),),
        sanitizers=("scrub",),
    )
    flows = _flows(tmp_path, (
        "def a(db):\n"
        "    log_line(get_password(db))\n"
        "def b(db):\n"
        "    log_line(scrub(get_password(db)))\n"
    ), manifest=manifest)
    assert [(f.tag, f.line) for f in flows] == [("pw", 2)]


def test_wire_param_sources_respect_package_restriction(tmp_path):
    # `key` parameters are only born tainted inside the TCB packages.
    outside = _flows(tmp_path, (
        "def seal(key, payload):\n"
        "    print(key)\n"
    ), name="repro/attest/sample.py")
    inside = _flows(tmp_path, (
        "def seal(key, payload):\n"
        "    print(key)\n"
    ), name="repro/core/sample.py")
    assert outside == []
    assert [(f.tag, f.kind) for f in inside] == [("key", "log")]


# ----------------------------------------------------------------------
# Corpus tests: no false negatives on broken/, no positives on clean/
# ----------------------------------------------------------------------

def _corpus_findings(corpus: str):
    sources = collect_sources([FIXTURES / corpus])
    return collect_findings(sources, [cls() for cls in TAINT_RULES])


def test_broken_corpus_every_rule_fires():
    findings = _corpus_findings("broken")
    fired = {f.rule for f in findings}
    assert fired == {"SEC001", "SEC002", "SEC003", "TNT001", "TNT002"}


def test_broken_corpus_detects_every_seeded_violation():
    expected = {
        ("SEC001", "repro.stack.leak_sink", 15),   # print leak via helper
        ("SEC001", "repro.stack.leak_sink", 21),   # telemetry leak
        ("SEC001", "repro.stack.leak_sink", 31),   # wire leak, via-chain
        ("SEC002", "repro.stack.leak_compare", 7),
        ("SEC003", "repro.stack.leak_store", 12),
        ("TNT001", "repro.net.unverified", 12),
        ("TNT002", "repro.net.discard", 7),
        ("TNT002", "repro.net.discard", 12),
    }
    got = {(f.rule, f.module, f.line) for f in _corpus_findings("broken")}
    assert expected <= got, f"missed: {expected - got}"


def test_broken_corpus_reports_interprocedural_hop():
    findings = _corpus_findings("broken")
    wire = [f for f in findings if f.rule == "SEC001" and f.line == 31]
    assert wire and "send_raw" in wire[0].message


def test_clean_corpus_is_silent():
    assert _corpus_findings("clean") == []


def test_real_tree_has_no_unwaived_taint_findings():
    from repro.analysis import default_package_root

    sources = collect_sources([default_package_root()])
    findings = collect_findings(sources, [cls() for cls in TAINT_RULES])
    # The §3.2 manufacturer→vendor disclosure carries an inline waiver;
    # everything the taint rules flag must be waived there, not here.
    from repro.analysis.rules import run_rules

    unwaived = run_rules(sources, [cls() for cls in TAINT_RULES])
    assert unwaived == [], [f.render() for f in unwaived]
    # ...and the waiver is real: the raw pass does see the disclosure.
    assert any(
        f.rule == "SEC003" and f.module == "repro.attest_protocol.actors"
        for f in findings
    )


def test_full_lint_meets_latency_budget():
    import time

    from repro.analysis import analyze_paths

    start = time.perf_counter()
    analyze_paths()
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"lint took {elapsed:.1f}s (budget 10s)"
