"""Integration tests: RoCE reliable transport between two TNIC devices."""

import pytest

from repro.core import TnicDevice
from repro.net import ArpServer, Link, NetworkFault
from repro.net.packet import RdmaOpcode
from repro.roce import QueuePair
from repro.sim import DeterministicRng, Simulator

KEY = b"s" * 32
SESSION = 7


def build_pair(fault=None, trusted=True, rng_seed=0):
    """Two devices on one link with a connected QP each way."""
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp, trusted=trusted)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp, trusted=trusted)
    Link(sim, a.mac, b.mac, fault=fault, rng=DeterministicRng(rng_seed, "link"))
    if trusted:
        a.install_session(SESSION, KEY)
        b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    return sim, a, b


def test_trusted_send_delivers_verified_payload():
    sim, a, b = build_pair()
    completion = a.send(1, b"hello-tnic")
    sim.run(completion)
    items = b.drain(2)
    assert [i["payload"] for i in items] == [b"hello-tnic"]
    assert items[0]["message"].device_id == 1


def test_untrusted_send_has_no_attestation():
    sim, a, b = build_pair(trusted=False)
    sim.run(a.send(1, b"raw"))
    items = b.drain(2)
    assert items[0]["payload"] == b"raw"
    assert items[0]["message"] is None


def test_fifo_ordering_many_messages():
    sim, a, b = build_pair()
    payloads = [f"msg-{i}".encode() for i in range(20)]
    completions = [a.send(1, p) for p in payloads]
    for completion in completions:
        sim.run(completion)
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_poll_reports_completions_in_order():
    sim, a, b = build_pair()
    for i in range(3):
        sim.run(a.send(1, f"m{i}".encode()))
    sim.run()
    entries = b.poll(2, max_entries=10)
    assert [e.msn for e in entries] == [0, 1, 2]
    assert all(e.ok for e in entries)
    assert b.poll(2) == []


def test_retransmission_recovers_from_drops():
    """Reliability: 'TNIC guarantees packet retransmission between two
    correct nodes until their successful reception'."""
    fault = NetworkFault(drop_probability=0.3)
    sim, a, b = build_pair(fault=fault, rng_seed=11)
    payloads = [f"msg-{i}".encode() for i in range(10)]
    completions = [a.send(1, p) for p in payloads]
    for completion in completions:
        sim.run(completion)
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads
    assert a.roce.tables.get(1).retransmissions > 0


def test_duplicates_are_not_delivered_twice():
    fault = NetworkFault(duplicate_probability=0.5)
    sim, a, b = build_pair(fault=fault, rng_seed=5)
    payloads = [f"msg-{i}".encode() for i in range(10)]
    for p in payloads:
        sim.run(a.send(1, p))
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_reordering_preserves_fifo_delivery():
    fault = NetworkFault(reorder_probability=0.4, reorder_extra_delay_us=40.0)
    sim, a, b = build_pair(fault=fault, rng_seed=9)
    payloads = [f"msg-{i}".encode() for i in range(12)]
    completions = [a.send(1, p) for p in payloads]
    for completion in completions:
        sim.run(completion)
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_tampered_packet_rejected_then_recovered():
    """A tampered payload must never reach the application; the genuine
    retransmission must still be delivered."""
    state = {"hit": False}

    def tamper_once(pkt):
        if pkt.payload and not state["hit"] and pkt.trailer is not None:
            state["hit"] = True
            return pkt.with_payload(b"evil-" + pkt.payload)
        return None

    fault = NetworkFault(tamper=tamper_once)
    sim, a, b = build_pair(fault=fault)
    completion = a.send(1, b"secret")
    sim.run(completion)
    sim.run()
    items = b.drain(2)
    assert [i["payload"] for i in items] == [b"secret"]
    assert b.roce.verification_failures >= 1


def test_replayed_packet_rejected():
    """Replay: a stale but well-formed packet redelivered later must not
    be executed twice (non-equivocation)."""
    fault = NetworkFault(replay_probability=0.5)
    sim, a, b = build_pair(fault=fault, rng_seed=21)
    payloads = [f"msg-{i}".encode() for i in range(8)]
    for p in payloads:
        sim.run(a.send(1, p))
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_bidirectional_traffic():
    sim, a, b = build_pair()
    ca = a.send(1, b"ping")
    cb = b.send(2, b"pong")
    sim.run(ca)
    sim.run(cb)
    sim.run()
    assert b.drain(2)[0]["payload"] == b"ping"
    assert a.drain(1)[0]["payload"] == b"pong"


def test_send_on_unconnected_qp_fails():
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp)
    Link(sim, a.mac, b.mac)
    a.install_session(SESSION, KEY)
    a.create_qp(QueuePair(qp_number=1, session_id=SESSION,
                          local_ip="10.0.0.1", remote_ip="10.0.0.2"))
    completion = a.send(1, b"x")
    with pytest.raises(Exception, match="not connected"):
        sim.run(completion)


def test_rdma_write_places_payload_in_remote_memory():
    class FakeMemory:
        def __init__(self):
            self.writes = []

        def dma_write(self, address, data):
            self.writes.append((address, data))

        def dma_read(self, address, length):
            return b""

    sim, a, b = build_pair()
    memory = FakeMemory()
    b.attach_host_memory(memory)
    completion = a.send(1, b"written", opcode=RdmaOpcode.WRITE,
                        meta={"remote_addr": 0x1000})
    sim.run(completion)
    sim.run()
    b.drain(2)
    assert memory.writes == [(0x1000, b"written")]


def test_local_attest_and_verify():
    sim, a, b = build_pair()

    def run():
        msg = yield a.local_attest(SESSION, b"log-entry")
        ok = yield b.local_verify(SESSION, msg)
        return msg, ok

    msg, ok = sim.run(sim.process(run()))
    assert ok is True
    assert msg.counter == 0


def test_connection_limit_enforced():
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp)
    a.roce.tables.max_connections = 2
    for qp_num in (1, 2):
        a.create_qp(QueuePair(qp_number=qp_num, session_id=SESSION,
                              local_ip="10.0.0.1", remote_ip="10.0.0.2"))
    with pytest.raises(RuntimeError, match="full"):
        a.create_qp(QueuePair(qp_number=3, session_id=SESSION,
                              local_ip="10.0.0.1", remote_ip="10.0.0.2"))
