"""Tests for the BFT replicated counter (Appendix C.3, Algorithm 3)."""

import pytest

from repro.systems.bft import BftCounter, ByzantineBehaviour


def test_happy_path_commits_all_batches():
    system = BftCounter(provider_name="tnic", f=1, batch=1)
    metrics = system.run_workload(batches=10)
    assert metrics.committed == 10
    assert not system.aborted
    # All replicas converge on the same counter value.
    values = {r.counter for r in system.replicas.values()}
    assert values == {10}
    assert system.detected_faults() == {}


def test_batching_multiplies_committed_increments():
    system = BftCounter(provider_name="tnic", f=1, batch=8)
    metrics = system.run_workload(batches=5)
    assert metrics.committed == 40
    values = {r.counter for r in system.replicas.values()}
    assert values == {40}


def test_throughput_improves_with_batching():
    """Fig 10: 'batching improves the throughput ... proportionally'."""
    t1 = BftCounter("tnic", batch=1).run_workload(batches=10).throughput_ops
    t8 = BftCounter("tnic", batch=8).run_workload(batches=10).throughput_ops
    t16 = BftCounter("tnic", batch=16).run_workload(batches=10).throughput_ops
    assert t8 > 3 * t1
    assert t16 > t8


def test_tnic_outperforms_tee_versions():
    """Fig 10: TNIC improves throughput vs SGX and AMD-sev ~4-6x."""
    results = {
        name: BftCounter(name, batch=1, seed=2).run_workload(batches=8)
        for name in ("tnic", "sgx", "amd-sev", "ssl-lib")
    }
    tnic = results["tnic"].throughput_ops
    assert tnic > 1.5 * results["sgx"].throughput_ops
    assert tnic > 1.5 * results["amd-sev"].throughput_ops
    # SSL-lib (no tamper-proofing, no emulated latency) is fastest.
    assert results["ssl-lib"].throughput_ops > tnic


def test_f2_cluster_runs():
    system = BftCounter(provider_name="tnic", f=2, batch=1)
    metrics = system.run_workload(batches=3)
    assert metrics.committed == 3
    assert len(system.replicas) == 5


def test_equivocating_leader_is_detected_and_blocks_commit():
    """A leader sending different statements to different followers is
    exposed by the per-sender counters."""
    system = BftCounter(
        "tnic",
        behaviours={"r0": ByzantineBehaviour(equivocate=True)},
    )
    system.run_workload(batches=1, timeout_us=20_000.0)
    assert system.aborted
    faults = system.detected_faults()
    assert any(
        "counter" in fault or "mismatch" in fault
        for fault_list in faults.values()
        for fault in fault_list
    )


def test_wrong_output_leader_detected_by_simulation():
    """Followers simulate the leader's action; a deviating output is
    caught (integrity property)."""
    system = BftCounter(
        "tnic",
        behaviours={"r0": ByzantineBehaviour(wrong_output=True)},
    )
    system.run_workload(batches=1, timeout_us=20_000.0)
    assert system.aborted
    faults = system.detected_faults()
    assert any(
        "output mismatch" in fault
        for fault_list in faults.values()
        for fault in fault_list
    )


def test_replaying_leader_blocks_commit():
    """Replaying a stale attested message fails the continuity check
    at every follower after the first delivery."""
    system = BftCounter(
        "tnic",
        behaviours={"r0": ByzantineBehaviour(replay=True)},
    )
    # First batch has no prior message to replay: committed normally.
    # Subsequent batches replay batch 0's PoE and never commit.
    system.run_workload(batches=3, timeout_us=20_000.0)
    assert system.aborted
    assert system.metrics.committed <= 1 * system.batch


def test_parameter_validation():
    with pytest.raises(ValueError):
        BftCounter(f=0)
    with pytest.raises(ValueError):
        BftCounter(batch=0)


def test_latency_recorded_per_commit():
    system = BftCounter("tnic", batch=1)
    metrics = system.run_workload(batches=5)
    assert len(metrics.latencies_us) == 5
    assert metrics.mean_latency_us > 0
    assert metrics.percentile_latency_us(0.5) <= metrics.percentile_latency_us(0.99)


def test_quorum_read_returns_committed_counter():
    system = BftCounter("tnic", f=1, batch=2)
    system.run_workload(batches=3)
    assert system.read_counter() == 6


def test_quorum_read_tolerates_one_divergent_replica():
    """A single Byzantine replica reporting a wrong value cannot break
    the f+1 read quorum."""
    system = BftCounter("tnic", f=1, batch=1)
    system.run_workload(batches=2)
    system.replicas["r2"].counter = 999  # lies about its state
    assert system.read_counter() == 2


def test_quorum_read_times_out_beyond_tolerance():
    system = BftCounter("tnic", f=1, batch=1)
    system.run_workload(batches=1)
    system.replicas["r1"].counter = 500
    system.replicas["r2"].counter = 700
    import pytest as _pytest
    with _pytest.raises(TimeoutError):
        system.read_counter(timeout_us=5_000.0)
