"""Edge-case tests for the device datapath, DMA and transport limits."""

import pytest

from repro.core import TnicDevice
from repro.core.device import ReadTimeout
from repro.core.dma import DmaEngine
from repro.net import ArpServer, Link, NetworkFault
from repro.roce import QueuePair
from repro.roce.transport import TransportError
from repro.sim import Simulator
from repro.sim.latency import TNIC_PCIE_TRANSFER_US

KEY = b"edge-case-key-0123456789abcdef!!"
SESSION = 3


def test_dma_sync_vs_async_setup_cost():
    sim = Simulator()
    sync = DmaEngine(sim, synchronous=True)
    fast = DmaEngine(sim, synchronous=False)
    assert sync.setup_cost_us() == TNIC_PCIE_TRANSFER_US
    assert fast.setup_cost_us() < sync.setup_cost_us()


def test_dma_transfer_charges_time_and_counts_bytes():
    sim = Simulator()
    dma = DmaEngine(sim)
    done = dma.transfer(48_000)  # 4us at 12000 B/us + setup
    sim.run(done)
    assert sim.now > 4.0
    assert dma.bytes_moved == 48_000
    assert dma.transfers == 1


def test_dma_negative_size_rejected():
    with pytest.raises(ValueError):
        DmaEngine(Simulator()).transfer(-1)


def test_untrusted_device_rejects_trusted_operations():
    sim = Simulator()
    device = TnicDevice(sim, 1, "10.0.0.1", "m-a", ArpServer(), trusted=False)
    with pytest.raises(RuntimeError, match="untrusted"):
        device.install_session(1, KEY)
    with pytest.raises(RuntimeError, match="untrusted"):
        device.local_attest(1, b"x")


def test_transport_gives_up_after_retry_limit():
    """A fully dead link eventually fails the send completion."""
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "m-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "m-b", arp)
    Link(sim, a.mac, b.mac, fault=NetworkFault(drop_probability=1.0))
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    a.roce.max_retries = 3
    a.roce.retransmit_timeout_us = 50.0
    qp = QueuePair(qp_number=1, session_id=SESSION,
                   local_ip="10.0.0.1", remote_ip="10.0.0.2")
    a.create_qp(qp)
    a.connect_qp(1, 2)
    completion = a.send(1, b"into the void")
    with pytest.raises(TransportError, match="retry limit"):
        sim.run(completion)
    assert a.roce.tables.get(1).retransmissions >= 3


def test_read_remote_without_host_memory_times_out():
    """READ against a target with no registered memory gets no response;
    the composed deadline fails the completion instead of parking the
    requester forever (LIV005)."""
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "m-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "m-b", arp)
    Link(sim, a.mac, b.mac)
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    result = a.read_remote(1, 0x1000, 8)
    sim.run(until=10_000.0)
    assert not result.triggered  # still pending inside the deadline
    with pytest.raises(ReadTimeout, match="no response"):
        sim.run(result)
    assert not a._pending_reads  # the expiry cleaned up the pending map


def test_duplicate_qp_rejected():
    sim = Simulator()
    device = TnicDevice(sim, 1, "10.0.0.1", "m-a", ArpServer())
    qp = QueuePair(qp_number=1, session_id=SESSION,
                   local_ip="10.0.0.1", remote_ip="10.0.0.2")
    device.create_qp(qp)
    with pytest.raises(ValueError, match="already created"):
        device.create_qp(qp)


def test_queue_pair_validation():
    with pytest.raises(ValueError):
        QueuePair(qp_number=-1, session_id=1,
                  local_ip="10.0.0.1", remote_ip="10.0.0.2")
    with pytest.raises(ValueError):
        QueuePair(qp_number=1, session_id=-1,
                  local_ip="10.0.0.1", remote_ip="10.0.0.2")
    with pytest.raises(ValueError):
        QueuePair(qp_number=1, session_id=1,
                  local_ip="10.0.0.1", remote_ip="10.0.0.1")
    qp = QueuePair(qp_number=1, session_id=1,
                   local_ip="10.0.0.1", remote_ip="10.0.0.2")
    assert not qp.connected()
    bound = qp.with_remote_qp(5)
    assert bound.connected()
    with pytest.raises(ValueError):
        qp.with_remote_qp(-2)


def test_poll_respects_max_entries():
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "m-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "m-b", arp)
    Link(sim, a.mac, b.mac)
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    for i in range(5):
        sim.run(a.send(1, f"m{i}".encode()))
    sim.run()
    first = b.poll(2, max_entries=2)
    rest = b.poll(2, max_entries=10)
    assert len(first) == 2
    assert len(rest) == 3


def test_device_stats_snapshot():
    sim, a, b = None, None, None
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "m-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "m-b", arp)
    Link(sim, a.mac, b.mac)
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    for i in range(3):
        sim.run(a.send(1, f"m{i}".encode()))
    sim.run()
    b.drain(2)
    stats_a = a.stats()
    stats_b = b.stats()
    assert stats_a.attestations == 3
    assert stats_b.verifications == 3
    assert stats_b.rejections == 0
    assert stats_a.tx_packets >= 3
    assert stats_a.queue_pairs == 1
    assert stats_a.dma_bytes > 0
    assert "device 1" in stats_a.describe()


def test_untrusted_device_stats_zero_attest():
    sim = Simulator()
    device = TnicDevice(sim, 9, "10.0.0.9", "m-x", ArpServer(), trusted=False)
    stats = device.stats()
    assert stats.attestations == 0
    assert stats.verifications == 0
