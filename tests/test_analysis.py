"""Tests for the static-analysis subsystem (repro.analysis).

Fixture snippets seed one violation of every rule (and a matching clean
variant), and the shipped codebase itself must lint clean against the
shipped baseline — that last test is the CI gate DESIGN.md's
determinism and TCB promises hang on.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    TcbReport,
    analyze_paths,
    collect_findings,
    collect_sources,
    default_package_root,
    render_json,
    render_sarif,
    render_text,
    rule_catalog,
    run_rules,
)
from repro.analysis.boundaries import TrustedBoundaryRule
from repro.analysis.determinism import (
    DatetimeNowRule,
    EnvironReadRule,
    SetOrderingRule,
    UnseededRandomRule,
    WallClockRule,
)
from repro.analysis.sim_safety import (
    BlockingCallInProcessRule,
    FileIoInProcessRule,
    SleepInProcessRule,
)
from repro.analysis.walker import parse_file


def _write_module(tmp_path: Path, relpath: str, source: str) -> Path:
    """Write *source* under tmp_path, creating package __init__ files."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    current = path.parent
    while current != tmp_path:
        init = current / "__init__.py"
        if not init.exists():
            init.write_text("")
        current = current.parent
    path.write_text(source)
    return path


def _rule_hits(rule, tmp_path: Path, source: str, name: str = "repro/sample.py"):
    src = parse_file(_write_module(tmp_path, name, source))
    return list(rule.check(src))


# ----------------------------------------------------------------------
# Determinism rules
# ----------------------------------------------------------------------

def test_det001_flags_wall_clock(tmp_path):
    hits = _rule_hits(
        WallClockRule(), tmp_path,
        "import time\n\ndef now_us():\n    return time.time() * 1e6\n",
    )
    assert [h.rule for h in hits] == ["DET001"]
    assert hits[0].line == 4


def test_det001_ignores_virtual_clock(tmp_path):
    hits = _rule_hits(
        WallClockRule(), tmp_path,
        "def now_us(sim):\n    return sim.now\n",
    )
    assert hits == []


def test_det002_flags_datetime_now(tmp_path):
    hits = _rule_hits(
        DatetimeNowRule(), tmp_path,
        "from datetime import datetime\n\nSTAMP = datetime.now()\n",
    )
    assert [h.rule for h in hits] == ["DET002"]


def test_det003_flags_global_random_and_unseeded_ctor(tmp_path):
    hits = _rule_hits(
        UnseededRandomRule(), tmp_path,
        "import random\n\n"
        "def draw():\n"
        "    return random.random() + random.Random().random()\n",
    )
    assert {h.rule for h in hits} == {"DET003"}
    assert len(hits) == 2


def test_det003_allows_seeded_random(tmp_path):
    hits = _rule_hits(
        UnseededRandomRule(), tmp_path,
        "import random\n\n"
        "def draw(seed):\n"
        "    return random.Random(seed).random()\n",
    )
    assert hits == []


def test_det004_flags_environ_reads(tmp_path):
    hits = _rule_hits(
        EnvironReadRule(), tmp_path,
        "import os\n\n"
        "A = os.environ['HOME']\n"
        "B = os.getenv('HOME')\n"
        "C = os.environ.get('HOME')\n",
    )
    assert [h.rule for h in hits] == ["DET004"] * 3


def test_det005_flags_set_ordering(tmp_path):
    hits = _rule_hits(
        SetOrderingRule(), tmp_path,
        "def order(xs):\n"
        "    for x in set(xs):\n"
        "        pass\n"
        "    return list(set(xs))\n",
    )
    assert [h.rule for h in hits] == ["DET005", "DET005"]


def test_det005_allows_sorted(tmp_path):
    hits = _rule_hits(
        SetOrderingRule(), tmp_path,
        "def order(xs):\n"
        "    for x in sorted(set(xs)):\n"
        "        pass\n"
        "    return sorted(set(xs))\n",
    )
    assert hits == []


# ----------------------------------------------------------------------
# Sim-safety rules
# ----------------------------------------------------------------------

_BLOCKING_PROCESS = (
    "import socket\n"
    "import time\n\n"
    "def proc(sim):\n"
    "    time.sleep(0.1)\n"
    "    handle = open('/tmp/x')\n"
    "    socket.create_connection(('host', 80))\n"
    "    yield sim.timeout(1.0)\n"
)


def test_sim001_flags_sleep_in_process(tmp_path):
    hits = _rule_hits(SleepInProcessRule(), tmp_path, _BLOCKING_PROCESS)
    assert [h.rule for h in hits] == ["SIM001"]
    assert "proc" in hits[0].message


def test_sim002_flags_file_io_in_process(tmp_path):
    hits = _rule_hits(FileIoInProcessRule(), tmp_path, _BLOCKING_PROCESS)
    assert [h.rule for h in hits] == ["SIM002"]


def test_sim003_flags_socket_in_process(tmp_path):
    hits = _rule_hits(BlockingCallInProcessRule(), tmp_path, _BLOCKING_PROCESS)
    assert [h.rule for h in hits] == ["SIM003"]


def test_sim_rules_ignore_non_generators(tmp_path):
    source = (
        "import time\n\n"
        "def helper():\n"
        "    time.sleep(0.1)\n"
        "    return open('/tmp/x')\n"
    )
    assert _rule_hits(SleepInProcessRule(), tmp_path, source) == []
    assert _rule_hits(FileIoInProcessRule(), tmp_path, source) == []


def test_sim_rules_skip_nested_function_bodies(tmp_path):
    source = (
        "import time\n\n"
        "def proc(sim):\n"
        "    def sync_helper():\n"
        "        time.sleep(0.1)\n"
        "    yield sim.timeout(1.0)\n"
    )
    assert _rule_hits(SleepInProcessRule(), tmp_path, source) == []


# ----------------------------------------------------------------------
# Boundary rule (fixture-level; the real tree is covered by
# tests/test_tcb_boundaries.py)
# ----------------------------------------------------------------------

def test_bnd001_flags_trusted_importing_untrusted(tmp_path):
    path = _write_module(
        tmp_path, "repro/core/evil.py",
        "from repro.systems.bft import BftCounter\n",
    )
    src = parse_file(path)
    assert src.module == "repro.core.evil"
    hits = list(TrustedBoundaryRule().check_project([src]))
    assert [h.rule for h in hits] == ["BND001"]
    assert "repro.systems.bft" in hits[0].message


def test_bnd001_ignores_type_checking_imports(tmp_path):
    path = _write_module(
        tmp_path, "repro/core/annotations_only.py",
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.systems.bft import BftCounter\n",
    )
    assert list(TrustedBoundaryRule().check_project([parse_file(path)])) == []


# ----------------------------------------------------------------------
# Suppression: inline ignores and baseline
# ----------------------------------------------------------------------

def test_inline_ignore_suppresses_finding(tmp_path):
    path = _write_module(
        tmp_path, "repro/waived.py",
        "import time\n\n"
        "def now():\n"
        "    return time.time()  # lint: ignore[DET001]\n",
    )
    findings = run_rules([parse_file(path)])
    assert all(f.rule != "DET001" for f in findings)


def test_baseline_suppresses_and_survives_line_moves(tmp_path):
    source = "import time\n\ndef now():\n    return time.time()\n"
    path = _write_module(tmp_path, "repro/legacy.py", source)
    findings = run_rules([parse_file(path)])
    assert findings

    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, findings)
    assert run_rules([parse_file(path)],
                     baseline=Baseline.load(baseline_path)) == []

    # Unrelated edits above the waived line must not invalidate the waiver.
    path.write_text("import time\n\nPAD = 1\n\n\ndef now():\n    return time.time()\n")
    assert run_rules([parse_file(path)],
                     baseline=Baseline.load(baseline_path)) == []


def test_identical_lines_get_distinct_fingerprints(tmp_path):
    # Two byte-identical offending lines used to hash to one fingerprint,
    # so a single baseline entry silently waived both.
    source = (
        "import time\n\n"
        "def a():\n"
        "    return time.time()\n\n"
        "def b():\n"
        "    return time.time()\n"
    )
    path = _write_module(tmp_path, "repro/twice.py", source)
    findings = [f for f in collect_findings([parse_file(path)])
                if f.rule == "DET001"]
    assert len(findings) == 2
    assert findings[0].occurrence == 0 and findings[1].occurrence == 1
    assert findings[0].fingerprint() != findings[1].fingerprint()

    # Migration safety: occurrence 0 keeps the pre-index hash basis.
    from dataclasses import replace

    legacy = replace(findings[1], occurrence=0)
    assert legacy.fingerprint() == findings[0].fingerprint()


def test_baseline_waives_occurrences_individually(tmp_path):
    source = (
        "import time\n\n"
        "def a():\n"
        "    return time.time()\n\n"
        "def b():\n"
        "    return time.time()\n"
    )
    path = _write_module(tmp_path, "repro/twice.py", source)
    findings = [f for f in collect_findings([parse_file(path)])
                if f.rule == "DET001"]
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, findings[:1])  # waive only the first
    kept = run_rules([parse_file(path)], baseline=Baseline.load(baseline_path))
    assert [f.occurrence for f in kept if f.rule == "DET001"] == [1]


def test_stale_baseline_entries_detected_and_pruned(tmp_path):
    source = "import time\nNOW = time.time()\n"
    path = _write_module(tmp_path, "repro/fixed.py", source)
    src = parse_file(path)
    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, collect_findings([src]))
    assert Baseline.load(baseline_path).stale_entries(collect_findings([src])) == []

    # Fix the offending line: every entry for it is now stale.
    path.write_text("NOW = 0.0\n")
    fixed = parse_file(path)
    baseline = Baseline.load(baseline_path)
    stale = baseline.stale_entries(collect_findings([fixed]))
    assert [e["rule"] for e in stale] == ["DET001"]

    removed = baseline.prune(collect_findings([fixed]))
    assert len(removed) == 1
    assert Baseline.load(baseline_path).entries == []


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def test_render_text_and_json(tmp_path):
    path = _write_module(
        tmp_path, "repro/render_me.py",
        "import time\nNOW = time.time()\n",
    )
    findings = run_rules([parse_file(path)])
    text = render_text(findings)
    assert "DET001" in text and f"{path}:2:" in text

    payload = json.loads(render_json(findings))
    assert payload["count"] == len(findings)
    assert payload["findings"][0]["rule"] == "DET001"
    assert payload["findings"][0]["fingerprint"]


def test_rule_catalog_lists_every_pass():
    catalog = rule_catalog()
    assert {"DET001", "DET002", "DET003", "DET004", "DET005",
            "SIM001", "SIM002", "SIM003", "BND001",
            "SEC001", "SEC002", "SEC003", "TNT001", "TNT002",
            "RACE001", "RACE002", "RACE003",
            "SHD001", "SHD002", "SHD003"} <= set(catalog)
    assert all(catalog.values())


def test_render_sarif_is_valid_and_carries_fingerprints(tmp_path):
    path = _write_module(
        tmp_path, "repro/render_me.py",
        "import time\nNOW = time.time()\n",
    )
    findings = run_rules([parse_file(path)])
    document = json.loads(render_sarif(findings))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    assert run["tool"]["driver"]["name"] == "tnic-lint"
    result = run["results"][0]
    assert result["ruleId"] == "DET001"
    assert result["partialFingerprints"]["tnicLint/v1"] == findings[0].fingerprint()
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 2


def _sarif_document_for(tmp_path, name, source):
    path = _write_module(tmp_path, name, source)
    findings = run_rules([parse_file(path)])
    assert findings, "fixture must produce findings"
    return findings, json.loads(render_sarif(findings))


def test_render_sarif_matches_the_2_1_0_schema_shape(tmp_path):
    """Required keys, rule metadata for every result, stable ruleIndex."""
    _findings, document = _sarif_document_for(
        tmp_path, "repro/shape.py",
        "import time\nimport random\n"
        "NOW = time.time()\nDICE = random.random()\n",
    )
    assert document["$schema"].endswith("sarif-2.1.0.json")
    assert document["version"] == "2.1.0"
    assert isinstance(document["runs"], list) and document["runs"]
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] and driver["informationUri"]
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids), "driver rules must be sorted"
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
    for result in run["results"]:
        assert set(result) >= {"ruleId", "ruleIndex", "level", "message",
                               "locations", "partialFingerprints"}
        # ruleIndex must point at the matching driver rule (§3.27.6).
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1


def test_render_sarif_indexes_shd_rules(tmp_path):
    """The ownership pass's findings carry rule metadata like any other."""
    root = tmp_path / "repro"
    root.mkdir(parents=True, exist_ok=True)
    (root / "__init__.py").write_text("")
    (root / "shard_bad.py").write_text(
        "class System:\n"
        "    def __init__(self, names):\n"
        "        self.latest = None\n"
        "        self.nodes = [Node(n, self) for n in names]\n"
        "\n"
        "class Node:\n"
        "    def __init__(self, name, system):\n"
        "        self.system = system\n"
        "        self.log = []\n"
        "\n"
        "    def run(self, sim):\n"
        "        yield sim.timeout(1)\n"
        "        self.system.latest = self.log\n"
    )
    findings = run_rules(collect_sources([tmp_path]))
    shd = [f for f in findings if f.rule.startswith("SHD")]
    assert shd, "expected SHD findings from the fixture"
    document = json.loads(render_sarif(findings))
    run = document["runs"][0]
    rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    shd_results = [r for r in run["results"]
                   if r["ruleId"].startswith("SHD")]
    assert shd_results
    for result in shd_results:
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


# ----------------------------------------------------------------------
# The shipped tree itself
# ----------------------------------------------------------------------

@pytest.mark.lint
def test_shipped_codebase_lints_clean_against_baseline():
    assert analyze_paths() == []


@pytest.mark.lint
def test_tcb_accounting_measures_trusted_split_and_emits_artifact():
    sources = collect_sources([default_package_root()])
    report = TcbReport.from_sources(sources)
    assert report.trusted_loc > 0
    assert report.untrusted_loc > report.trusted_loc
    payload = report.to_json()
    assert payload["paper_tnic_tcb_loc"] == 2_114
    # Measured TCB must stay the same order of magnitude as the paper's
    # 2,114-LoC attestation kernel — a 10x blow-up means trusted code
    # sprawl that Table 4's argument no longer covers.
    assert report.trusted_loc < 10 * payload["paper_tnic_tcb_loc"]

    results = Path(__file__).resolve().parents[1] / "benchmarks" / "results"
    if results.parent.is_dir():  # running from a checkout: refresh artifact
        written = report.write(results / "tcb_loc_report.json")
        assert json.loads(written.read_text())["trusted_loc"] == report.trusted_loc
