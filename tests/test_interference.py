"""The interference sanitizer: RACE lint, happens-before, perturbation.

Three layers under test, mirroring the corpus under
``tests/fixtures/race/``:

* the static RACE001–RACE003 rules — every seeded violation in
  ``broken/`` must be reported at exactly its line, and nothing in
  ``clean/`` may be flagged;
* the dynamic happens-before sanitizer — the executable
  ``dynamic_racy`` fixture must produce findings (and a visible lost
  update), the lock-serialised ``dynamic_clean`` twin must not, and the
  hooks must cost nothing while ``sim.sanitizer`` is ``None``;
* the schedule-perturbation harness — the same seed must reproduce the
  same schedule byte-for-byte, the default FIFO tie-break must be
  untouched (the golden traces depend on it), and the tier-1 scenarios
  must digest-stable across eight perturbed schedules.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro.analysis.interference import INTERFERENCE_RULES
from repro.analysis.rules import (
    Rule,
    collect_findings,
    rule_catalog,
)
from repro.sanitizer import Sanitizer, derive_seed, run_sanitize
from repro.sanitizer.perturb import SCENARIOS
from repro.sim import Simulator
from repro.sim.instrument import note_read, note_write
from repro.analysis.walker import collect_sources

FIXTURES = Path(__file__).parent / "fixtures" / "race"


# ----------------------------------------------------------------------
# Static corpus: no false negatives on broken/, no positives on clean/
# ----------------------------------------------------------------------

def _corpus_findings(corpus: str):
    sources = collect_sources([FIXTURES / corpus])
    return collect_findings(sources, [cls() for cls in INTERFERENCE_RULES])


def test_broken_corpus_every_rule_fires():
    fired = {f.rule for f in _corpus_findings("broken")}
    assert fired == {"RACE001", "RACE002", "RACE003"}


def test_broken_corpus_detects_exactly_the_seeded_violations():
    expected = {
        ("RACE001", "repro.shared_ledger", 12),   # LEDGER.append
        ("RACE001", "repro.shared_ledger", 13),   # INDEX[...] = ...
        ("RACE001", "repro.shared_ledger", 19),   # global TOTAL +=
        ("RACE002", "repro.stale_counter", 15),   # self.value clobber
        ("RACE002", "repro.stale_counter", 21),   # self.table.update
        ("RACE003", "repro.live_iteration", 15),  # enumerate(self.peers)
        ("RACE003", "repro.live_iteration", 20),  # self.inbox.items()
        ("RACE003", "repro.live_iteration", 26),  # module-level PENDING
    }
    got = {(f.rule, f.module, f.line) for f in _corpus_findings("broken")}
    assert got == expected, (
        f"missed: {expected - got}; spurious: {got - expected}"
    )


def test_race002_message_names_the_read_and_yield_lines():
    finding = next(f for f in _corpus_findings("broken")
                   if f.rule == "RACE002" and f.line == 15)
    assert "read at line 13" in finding.message
    assert "yield at line 14" in finding.message


def test_clean_corpus_is_silent():
    assert _corpus_findings("clean") == []


def test_real_tree_has_no_unwaived_race_findings():
    from repro.analysis import analyze_paths

    flagged = [f for f in analyze_paths() if f.rule.startswith("RACE")]
    assert flagged == [], [f"{f.module}:{f.line} {f.rule}" for f in flagged]


def test_rule_catalog_lists_the_interference_pass():
    catalog = rule_catalog()
    assert {"RACE001", "RACE002", "RACE003"} <= set(catalog)


# ----------------------------------------------------------------------
# Satellite: rules must declare their id at registration time
# ----------------------------------------------------------------------

def test_rule_without_rule_id_raises_at_registration():
    class Incomplete(Rule):
        description = "forgot the id"

        def check(self, src):
            return iter(())

    with pytest.raises(TypeError, match="rule_id"):
        Incomplete()


def test_rule_with_rule_id_registers_fine():
    class Complete(Rule):
        rule_id = "TST001"
        description = "declared"

        def check(self, src):
            return iter(())

    assert Complete().rule_id == "TST001"


# ----------------------------------------------------------------------
# Dynamic sanitizer: racy fixture flagged, clean twin silent
# ----------------------------------------------------------------------

def _load_fixture(stem: str):
    spec = importlib.util.spec_from_file_location(
        f"race_fixture_{stem}", FIXTURES / f"{stem}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_sanitizer_flags_the_racy_fixture():
    racy = _load_fixture("dynamic_racy")
    sim = Simulator()
    sanitizer = Sanitizer.attach(sim)
    _, state = racy.run(sim)
    assert sanitizer.findings, "lost-update race not detected"
    kinds = {f.kind for f in sanitizer.findings}
    assert kinds <= {"write-write", "read-write", "write-read"}
    assert all(f.var == "counter" and f.field == "total"
               for f in sanitizer.findings)
    # The race is real: updates were actually lost.
    assert state.snapshot()["total"] < 10
    assert sanitizer.report().startswith("sanitizer:")
    assert len(sanitizer.to_json()["races"]) == len(sanitizer.findings)


def test_sanitizer_silent_on_the_lock_serialised_twin():
    clean = _load_fixture("dynamic_clean")
    sim = Simulator()
    sanitizer = Sanitizer.attach(sim)
    _, state = clean.run(sim)
    assert sanitizer.findings == []
    assert sanitizer.report() == "sanitizer: no races detected"
    # Serialisation also fixes the outcome: no update lost.
    assert state.snapshot()["total"] == 10


def test_sanitizer_report_is_run_to_run_deterministic():
    racy = _load_fixture("dynamic_racy")

    def one_report() -> str:
        sim = Simulator()
        sanitizer = Sanitizer.attach(sim)
        racy.run(sim)
        return sanitizer.report()

    assert one_report() == one_report()


def test_sanitizer_detached_by_default_and_hooks_gated(monkeypatch):
    racy = _load_fixture("dynamic_racy")
    calls = {"read": 0, "write": 0}
    real_read, real_write = Sanitizer.note_read, Sanitizer.note_write
    monkeypatch.setattr(
        Sanitizer, "note_read",
        lambda self, *a: (calls.__setitem__("read", calls["read"] + 1),
                         real_read(self, *a)),
    )
    monkeypatch.setattr(
        Sanitizer, "note_write",
        lambda self, *a: (calls.__setitem__("write", calls["write"] + 1),
                         real_write(self, *a)),
    )

    sim, _ = racy.run()  # no sanitizer attached
    assert sim.sanitizer is None
    assert calls == {"read": 0, "write": 0}

    sim = Simulator()
    Sanitizer.attach(sim)
    racy.run(sim)
    assert calls["read"] > 0 and calls["write"] > 0


def test_note_hooks_are_noops_without_a_sanitizer():
    sim = Simulator()
    assert sim.sanitizer is None
    note_read(sim, object(), "field")
    note_write(sim, object(), "field")  # must not raise


def test_detach_restores_the_null_gate():
    sim = Simulator()
    sanitizer = Sanitizer.attach(sim)
    assert sim.sanitizer is sanitizer
    sanitizer.detach()
    assert sim.sanitizer is None


# ----------------------------------------------------------------------
# Perturbation: seeded, reproducible, FIFO by default
# ----------------------------------------------------------------------

def _completion_order(seed: int | None) -> str:
    sim = Simulator()
    order: list[str] = []

    def waiter(name: str):
        yield sim.timeout(10)
        order.append(name)

    for name in "abcdef":
        sim.process(waiter(name))
    if seed is not None:
        sim.perturb_ties(seed)
    sim.run()
    return "".join(order)


def test_default_tiebreak_is_exact_fifo():
    assert _completion_order(None) == "abcdef"


def test_perturbation_shuffles_ties_reproducibly():
    # Constant pinned on purpose: a change means the perturbation
    # stream (or queue re-keying) changed, which invalidates every
    # recorded divergence seed.
    assert _completion_order(2) == "cdbfea"
    assert _completion_order(2) == _completion_order(2)


def test_different_seeds_reach_different_schedules():
    orders = {_completion_order(seed) for seed in range(6)}
    assert len(orders) > 1


def test_perturb_ties_refuses_a_running_loop():
    sim = Simulator()
    sim._running = True
    with pytest.raises(RuntimeError, match="running"):
        sim.perturb_ties(1)


def test_derive_seed_is_stable_and_collision_free():
    seeds = {
        derive_seed(0, scenario, index)
        for scenario in ("bft", "chain", "a2m")
        for index in range(8)
    }
    assert len(seeds) == 24
    assert derive_seed(0, "bft", 0) == derive_seed(0, "bft", 0)
    assert derive_seed(0, "bft", 0) != derive_seed(1, "bft", 0)


# ----------------------------------------------------------------------
# Harness: tier-1 scenarios digest-stable across eight schedules
# ----------------------------------------------------------------------

def test_scenarios_are_seed_reproducible():
    for name, scenario in SCENARIOS.items():
        seed = derive_seed(7, name, 0)
        assert scenario(seed) == scenario(seed), name


def test_run_sanitize_eight_seeds_all_stable():
    report = run_sanitize(seeds=8)
    assert report.ok, report.render()
    assert {r.name for r in report.results} == {"bft", "chain", "a2m"}
    for result in report.results:
        assert len(result.runs) == 8
        assert result.divergent_seeds == []
    assert "schedule-independent" in report.render()


def test_run_sanitize_validates_arguments():
    with pytest.raises(ValueError, match="seeds"):
        run_sanitize(seeds=0)
    with pytest.raises(ValueError, match="unknown scenario"):
        run_sanitize(scenario_names=["bft", "nope"])


def test_run_sanitize_report_json_is_reproducible():
    import json

    first = run_sanitize(scenario_names=["bft"], seeds=2, root_seed=3)
    second = run_sanitize(scenario_names=["bft"], seeds=2, root_seed=3)
    assert json.dumps(first.to_json(), sort_keys=True) == \
        json.dumps(second.to_json(), sort_keys=True)
