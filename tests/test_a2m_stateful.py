"""Stateful property testing of the A2M log (hypothesis rule machine).

Random interleavings of append / lookup / truncate / verify against a
Python-dict reference model: the A2M invariants (monotonic bounds,
live-window contents, digest-chain integrity) must hold at every step.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.sim import Simulator
from repro.systems.a2m import A2M, A2MError
from repro.tee import make_provider

KEY = b"stateful-a2m-key-0123456789abcd!"


class A2MMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        sim = Simulator()
        provider = make_provider("ssl-lib", sim, 1)  # fast latency model
        provider.install_session(1, KEY)
        self.sim = sim
        self.a2m = A2M(provider, 1)
        #: Reference model: sequence -> context for live entries.
        self.reference: dict[int, bytes] = {}
        self.head = 0
        self.tail = 0

    # ------------------------------------------------------------------
    @rule(ctx=st.binary(min_size=1, max_size=24))
    def append(self, ctx):
        entry = self.sim.run(self.a2m.append("log", ctx))
        assert entry.sequence == self.tail
        self.reference[self.tail] = ctx
        self.tail += 1

    @precondition(lambda self: self.tail > self.head)
    @rule(data=st.data())
    def lookup_live(self, data):
        seq = data.draw(st.integers(min_value=self.head,
                                    max_value=self.tail - 1))
        entry = self.sim.run(self.a2m.lookup("log", seq))
        if self.reference[seq] is not None:  # None == internal TRNC marker
            assert entry.context == self.reference[seq]

    @precondition(lambda self: self.head > 0)
    @rule()
    def lookup_forgotten_fails(self):
        with pytest.raises(A2MError):
            self.a2m.lookup("log", self.head - 1)

    @precondition(lambda self: self.tail > self.head)
    @rule(data=st.data(), nonce=st.binary(min_size=1, max_size=8))
    def truncate(self, data, nonce):
        new_head = data.draw(st.integers(min_value=self.head,
                                         max_value=self.tail))
        self.sim.run(self.a2m.truncate("log", new_head, nonce))
        for seq in [s for s in self.reference if s < new_head]:
            del self.reference[seq]
        self.head = new_head
        # truncate() appended a TRNC marker to the log itself.
        self.reference[self.tail] = None  # marker content is internal
        self.tail += 1

    @precondition(lambda self: self.tail > self.head)
    @rule()
    def verify_live_range(self):
        assert self.a2m.verify_range("log", self.head, self.tail)

    # ------------------------------------------------------------------
    @invariant()
    def bounds_match_reference(self):
        head, tail = self.a2m.bounds("log")
        assert head == self.head
        assert tail == self.tail

    @invariant()
    def live_window_complete(self):
        log = self.a2m._log("log")
        assert set(log.entries) == set(self.reference)


TestA2MStateful = A2MMachine.TestCase
TestA2MStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


def test_verify_range_detects_in_place_rewrite():
    from dataclasses import replace

    sim = Simulator()
    provider = make_provider("ssl-lib", sim, 1)
    provider.install_session(1, KEY)
    a2m = A2M(provider, 1)
    for i in range(5):
        sim.run(a2m.append("log", f"e{i}".encode()))
    assert a2m.verify_range("log", 0, 5)
    log = a2m._log("log")
    log.entries[2] = replace(log.entries[2], context=b"rewritten")
    assert not a2m.verify_range("log", 0, 5)
    # A range before the rewrite still verifies.
    assert a2m.verify_range("log", 0, 2)


def test_verify_range_validation():
    sim = Simulator()
    provider = make_provider("ssl-lib", sim, 1)
    provider.install_session(1, KEY)
    a2m = A2M(provider, 1)
    sim.run(a2m.append("log", b"x"))
    with pytest.raises(A2MError, match="outside live window"):
        a2m.verify_range("log", 0, 5)
    with pytest.raises(A2MError):
        a2m.verify_range("log", 1, 1)
