"""Unit tests for smaller surfaces: event API edges, latency helpers,
FPGA model bounds, metrics accounting, and API error paths."""

import pytest

from repro.api import Cluster
from repro.api.ops import local_verify, rem_read, rem_write
from repro.core.resources import FpgaModel, ResourceUsage, U280
from repro.sim import Simulator
from repro.sim import latency as cal
from repro.sim.events import Event
from repro.systems.common import SystemMetrics


# ---------------------------------------------------------------------------
# Event API edges
# ---------------------------------------------------------------------------

def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(RuntimeError, match="before trigger"):
        _ = event.value


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError, match="already triggered"):
        event.succeed(2)
    with pytest.raises(RuntimeError, match="already triggered"):
        event.fail(ValueError("x"))


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_failed_event_value_raises_original():
    sim = Simulator()
    event = sim.event()
    event.fail(KeyError("gone"))
    sim.run()
    with pytest.raises(KeyError):
        _ = event.value


def test_run_until_past_raises():
    sim = Simulator()
    sim.timeout(10)
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim.run(until=1.0)


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run(proc)
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=5.0)
    with pytest.raises(ValueError):
        sim._schedule_at(1.0, Event(sim))


# ---------------------------------------------------------------------------
# Latency helpers
# ---------------------------------------------------------------------------

def test_latency_functions_reject_negative_sizes():
    with pytest.raises(ValueError):
        cal.tnic_hmac_pipeline_us(-1)
    with pytest.raises(ValueError):
        cal.tnic_path_hmac_us(-1)


def test_attest_breakdown_unknown_system():
    with pytest.raises(ValueError):
        cal.attest_breakdown("mystery")


def test_breakdown_shares_sum_to_one():
    for system in ("tnic", "sgx", "ssl-server", "amd-sev"):
        b = cal.attest_breakdown(system)
        total_share = (
            b.share("transfer") + b.share("compute") + b.share("other")
        )
        assert total_share == pytest.approx(1.0)


def test_emulated_attest_table_covers_all_providers():
    assert set(cal.EMULATED_ATTEST_US) == {
        "ssl-lib", "ssl-server", "sgx", "amd-sev", "tnic"
    }
    assert cal.EMULATED_ATTEST_US["ssl-lib"] == 0.0
    assert cal.EMULATED_ATTEST_US["amd-sev"] == 30.0


# ---------------------------------------------------------------------------
# FPGA model
# ---------------------------------------------------------------------------

def test_resource_usage_arithmetic():
    a = ResourceUsage(10, 20, 2)
    b = ResourceUsage(1, 2, 1)
    assert a + b == ResourceUsage(11, 22, 3)
    assert b.scaled(3) == ResourceUsage(3, 6, 3)
    with pytest.raises(ValueError):
        b.scaled(-1)
    assert b.fits_in(a)
    assert not a.fits_in(b)


def test_fpga_model_rejects_zero_connections():
    with pytest.raises(ValueError):
        FpgaModel().design_usage(0)


def test_fpga_model_second_roce_kernel_beyond_500():
    model = FpgaModel(capacity=ResourceUsage(10**9, 10**9, 10**9))
    low = model.design_usage(500)
    high = model.design_usage(501)
    from repro.core.resources import ROCE_KERNEL, ATTESTATION_REPLICA_INCREMENT

    extra = high.lut - low.lut
    assert extra == ROCE_KERNEL.lut + ATTESTATION_REPLICA_INCREMENT.lut


def test_single_connection_matches_table5_total():
    usage = FpgaModel().design_usage(1)
    assert usage.lut == 216_905
    assert usage.ff == 423_891
    assert usage.ramb36 == 335
    assert usage.fits_in(U280)


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_metrics_empty_defaults():
    metrics = SystemMetrics()
    assert metrics.throughput_ops == 0.0
    assert metrics.mean_latency_us == 0.0
    assert metrics.percentile_latency_us(0.99) == 0.0


def test_metrics_accounting():
    metrics = SystemMetrics()
    metrics.started_at = 0.0
    for latency in (10.0, 20.0, 30.0):
        metrics.record(latency)
    metrics.finished_at = 60.0
    assert metrics.committed == 3
    assert metrics.mean_latency_us == 20.0
    assert metrics.throughput_ops == pytest.approx(3 / 60e-6)
    assert metrics.percentile_latency_us(0.0) == 10.0
    assert metrics.percentile_latency_us(0.99) == 30.0


# ---------------------------------------------------------------------------
# API error paths
# ---------------------------------------------------------------------------

def test_rem_ops_require_remote_window():
    cluster = Cluster(["a", "b"])
    session_id, key = cluster.sessions.new_session()
    cluster["a"].device.install_session(session_id, key)
    cluster["b"].device.install_session(session_id, key)
    conn = cluster["a"].ibv_qp_conn(cluster["b"].ip, session_id)
    peer = cluster["b"].ibv_qp_conn(cluster["a"].ip, session_id)
    from repro.api.connection import ibv_sync

    conn.tx_region = cluster["a"].alloc_mem(4096)
    cluster["a"].init_lqueue(conn.tx_region)
    ibv_sync(conn, peer)  # no regions exchanged
    with pytest.raises(RuntimeError, match="remote window"):
        rem_write(conn, 0, b"x")
    with pytest.raises(RuntimeError, match="remote window"):
        rem_read(conn, 0, 4)


def test_stage_rejects_oversized_payload():
    cluster = Cluster(["a", "b"])
    conn, _ = cluster.connect("a", "b", region_bytes=4096)
    with pytest.raises(ValueError, match="larger than"):
        conn.stage(b"x" * (conn.tx_region.size + 1))


def test_stage_requires_tx_region():
    from repro.api.connection import IbvConnection
    from repro.roce.queue_pair import QueuePair

    cluster = Cluster(["a", "b"])
    session_id, _ = cluster.sessions.new_session()
    conn = IbvConnection(
        node=cluster["a"],
        qp=QueuePair(qp_number=1, session_id=session_id,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2"),
    )
    with pytest.raises(RuntimeError, match="no tx region"):
        conn.stage(b"x")
