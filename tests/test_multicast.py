"""Tests for equivocation-free multicast (§6.1)."""

import pytest

from repro.api import Cluster
from repro.api.multicast import (
    MulticastGroup,
    MulticastViolation,
    decode_attested,
    encode_attested,
)
from repro.core.attestation import AttestedMessage


def make_group(n_receivers=2):
    names = ["leader"] + [f"f{i}" for i in range(n_receivers)]
    cluster = Cluster(names)
    group = MulticastGroup.create(cluster, "leader", names[1:])
    return cluster, group


def deliver_all(cluster, group):
    """Drain every receiver; returns {receiver_index: [payloads]}."""
    out = {}
    for i, receiver in enumerate(group.receivers):
        payloads = []
        while True:
            event = receiver.deliver()
            if event is None:
                break
            payloads.append(cluster.run(event))
        out[i] = payloads
    return out


def test_frame_roundtrip():
    message = AttestedMessage(
        payload=b"data", alpha=b"a" * 32, session_id=5, device_id=9,
        counter=17,
    )
    assert decode_attested(encode_attested(message)) == message


def test_frame_truncation_rejected():
    with pytest.raises(MulticastViolation):
        decode_attested(b"short")
    message = AttestedMessage(b"x", b"a" * 32, 1, 1, 0)
    frame = encode_attested(message)
    with pytest.raises(MulticastViolation):
        decode_attested(frame[:20])


def test_multicast_delivers_identical_payload_everywhere():
    cluster, group = make_group(2)

    def run():
        yield from group.send(b"decision-0")
        yield from group.send(b"decision-1")

    cluster.run(cluster.sim.process(run()))
    cluster.run()
    delivered = deliver_all(cluster, group)
    assert delivered[0] == [b"decision-0", b"decision-1"]
    assert delivered[1] == [b"decision-0", b"decision-1"]


def test_single_attestation_per_multicast():
    """One local_send per group send: the counter advances once no
    matter how many receivers."""
    cluster, group = make_group(3)

    def run():
        first = yield from group.send(b"a")
        second = yield from group.send(b"b")
        return first, second

    first, second = cluster.run(cluster.sim.process(run()))
    assert first.counter == 0
    assert second.counter == 1


def test_receiver_detects_counter_gap():
    """Dropping a multicast at one receiver surfaces as a counter gap
    (no silent divergence between receivers)."""
    cluster, group = make_group(2)

    def run():
        yield from group.send(b"m0")
        yield from group.send(b"m1")

    cluster.run(cluster.sim.process(run()))
    cluster.run()
    victim = group.receivers[0]
    # Adversarial host drops m0 before the application sees it.
    from repro.api.ops import recv

    recv(victim.conn)
    event = victim.deliver()  # this is m1, counter 1, expected 0
    with pytest.raises(MulticastViolation, match="equivocation or replay"):
        cluster.run(event)


def test_forged_frame_rejected():
    cluster, group = make_group(1)

    def run():
        yield from group.send(b"honest")

    cluster.run(cluster.sim.process(run()))
    cluster.run()
    receiver = group.receivers[0]
    from repro.api.ops import recv

    item = recv(receiver.conn)
    message = decode_attested(item["payload"])
    forged = AttestedMessage(
        payload=b"forged", alpha=message.alpha,
        session_id=message.session_id, device_id=message.device_id,
        counter=message.counter,
    )
    # Feed the forged frame through verification directly.
    sim = receiver.conn.node.sim
    done = receiver.conn.node.device.local_verify(
        receiver.broadcast_session, forged
    )
    assert cluster.run(done) is False


def test_group_requires_receivers():
    cluster = Cluster(["a", "b"])
    with pytest.raises(ValueError):
        MulticastGroup.create(cluster, "a", [])
