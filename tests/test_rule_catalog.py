"""Catalog completeness: every shipped rule is explainable and documented.

As rule families accumulated (DET, SIM, BND, OBS, SEC, TNT, RACE, SHD,
PERF, LIV) nothing verified that a newly registered rule actually lands in
``rule_catalog()`` with usable ``--explain`` text and a row in
``docs/analysis.md``.  This module closes that drift for every rule at
once — adding a rule without documenting it now fails tier-1.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.rules import (
    default_rules,
    pass_groups,
    rule_by_id,
    rule_catalog,
)

DOCS = Path(__file__).parent.parent / "docs" / "analysis.md"

EXPECTED_FAMILIES = {
    "DET", "SIM", "BND", "OBS", "SEC", "TNT", "RACE", "SHD", "PERF", "LIV",
}


def test_liveness_rules_are_all_registered():
    # PR 10's LIV001-005 must each resolve in the catalog and --explain.
    for rule_id in ("LIV001", "LIV002", "LIV003", "LIV004", "LIV005"):
        assert rule_id in rule_catalog()
        rule = rule_by_id(rule_id)
        assert rule is not None and rule.explanation.strip()


def _family(rule_id: str) -> str:
    return rule_id.rstrip("0123456789")


def test_every_rule_family_is_shipped():
    families = {_family(rule.rule_id) for rule in default_rules()}
    assert families == EXPECTED_FAMILIES


def test_every_rule_appears_in_the_catalog_with_a_description():
    catalog = rule_catalog()
    for rule in default_rules():
        assert rule.rule_id in catalog
        assert catalog[rule.rule_id].strip(), (
            f"{rule.rule_id} has an empty description"
        )


def test_every_rule_has_working_explain_text():
    # --explain resolves through rule_by_id and prints description +
    # explanation; both must be non-empty for every registered id.
    for rule_id in rule_catalog():
        rule = rule_by_id(rule_id)
        assert rule is not None, f"--explain cannot resolve {rule_id}"
        assert rule.description.strip()
        assert rule.explanation.strip(), (
            f"{rule_id} has no --explain rationale"
        )


def test_every_rule_is_documented_in_docs_analysis_md():
    text = DOCS.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([A-Z]{3,4}\d{3})`", text))
    shipped = set(rule_catalog())
    missing = shipped - documented
    assert not missing, (
        f"rules shipped but undocumented in docs/analysis.md: "
        f"{sorted(missing)}"
    )


def test_docs_do_not_promise_rules_that_no_longer_ship():
    text = DOCS.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([A-Z]{3,4}\d{3})`", text))
    shipped = set(rule_catalog())
    phantom = documented - shipped
    assert not phantom, (
        f"rules documented in docs/analysis.md but not shipped: "
        f"{sorted(phantom)}"
    )


def test_rule_ids_are_unique_across_passes():
    ids = [rule.rule_id for rule in default_rules()]
    assert len(ids) == len(set(ids)), "duplicate rule id registered"


def test_pass_groups_partition_the_default_rules():
    grouped = [
        rule.rule_id for group in pass_groups().values() for rule in group
    ]
    assert sorted(grouped) == sorted(r.rule_id for r in default_rules())


@pytest.mark.parametrize("family", sorted(EXPECTED_FAMILIES))
def test_each_family_numbers_contiguously_from_001(family):
    numbers = sorted(
        int(rule_id[len(family):])
        for rule_id in rule_catalog()
        if _family(rule_id) == family
    )
    assert numbers == list(range(1, len(numbers) + 1)), (
        f"{family} rule numbering has gaps: {numbers}"
    )
