"""Additional coverage: driver conversions, rdma_lib failure paths,
RSA properties, provider verify failure, transform history bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster
from repro.crypto.rsa import generate_keypair
from repro.stack.driver import _ip_to_int, _mac_to_int
from repro.stack.memory import MemoryError_
from repro.stack.rdma_lib import WorkRequest
from repro.net.packet import RdmaOpcode

_KEYS = generate_keypair(seed="shared-property-key")


# ---------------------------------------------------------------------------
# Driver address conversions
# ---------------------------------------------------------------------------

def test_mac_to_int_parses_colon_form():
    assert _mac_to_int("02:00:00:00:00:0f") == 0x0200_0000_000F


def test_mac_to_int_fallback_hash():
    value = _mac_to_int("not-a-mac")
    assert 0 <= value < 2**48
    assert _mac_to_int("not-a-mac") == value


def test_mac_to_int_bad_hex_falls_back():
    value = _mac_to_int("zz:00:00:00:00:01")
    assert 0 <= value < 2**48


def test_ip_to_int_parses_dotted_quad():
    assert _ip_to_int("10.0.0.1") == (10 << 24) | 1
    assert _ip_to_int("255.255.255.255") == 0xFFFF_FFFF


def test_ip_to_int_fallback():
    assert 0 <= _ip_to_int("fe80::1") < 2**32
    assert 0 <= _ip_to_int("300.1.2.3") < 2**32


# ---------------------------------------------------------------------------
# rdma_lib failure path
# ---------------------------------------------------------------------------

def test_post_with_unregistered_address_fails():
    cluster = Cluster(["a", "b"])
    conn, _ = cluster.connect("a", "b")
    request = WorkRequest(
        opcode=RdmaOpcode.SEND,
        qp_number=conn.qp_number,
        local_addr=0xDEAD_0000,
        length=16,
    )
    done = cluster["a"].rdma.post(request)
    with pytest.raises(MemoryError_):
        cluster.run(done)
    # The REG-page lock was released despite the failure.
    assert not cluster["a"].process.contended


# ---------------------------------------------------------------------------
# RSA properties
# ---------------------------------------------------------------------------

@given(st.binary(min_size=0, max_size=128))
@settings(max_examples=40, deadline=None)
def test_rsa_sign_verify_any_message(message):
    signature = _KEYS.sign(message)
    assert _KEYS.public.verify(message, signature)


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_rsa_signature_not_transferable_between_messages(m1, m2):
    signature = _KEYS.sign(m1)
    assert _KEYS.public.verify(m2, signature) == (m1 == m2)


@given(st.integers(min_value=1, max_value=2**64))
@settings(max_examples=40, deadline=None)
def test_rsa_random_signatures_rejected(candidate):
    assert not _KEYS.public.verify(b"target message", candidate)


def test_rsa_minimum_bits_enforced():
    with pytest.raises(ValueError):
        generate_keypair(bits=128)


def test_rsa_fingerprint_stable():
    assert _KEYS.public.fingerprint() == _KEYS.public.fingerprint()
    assert len(_KEYS.public.fingerprint()) == 16


# ---------------------------------------------------------------------------
# Provider verify failure propagation
# ---------------------------------------------------------------------------

def test_provider_verify_failure_fails_event():
    from repro.core.attestation import AttestedMessage, MacMismatchError
    from repro.sim import Simulator
    from repro.tee import make_provider

    sim = Simulator()
    provider = make_provider("tnic", sim, 1)
    provider.install_session(1, b"k" * 32)
    genuine = provider.kernel.attest(1, b"data")
    forged = AttestedMessage(
        payload=b"evil", alpha=genuine.alpha, session_id=1,
        device_id=genuine.device_id, counter=genuine.counter,
    )
    event = provider.verify(1, forged)
    with pytest.raises(MacMismatchError):
        sim.run(event)


# ---------------------------------------------------------------------------
# Transform history bounds
# ---------------------------------------------------------------------------

def test_transform_history_is_bounded():
    from repro.api import BftTransform
    from repro.crypto.hashing import sha256

    cluster = Cluster(["s", "r"])
    conn, _ = cluster.connect("s", "r")
    counter = {"n": 0}

    def digest():
        return sha256("state", counter["n"])

    transform = BftTransform(conn, digest)
    for i in range(200):
        counter["n"] = i
        transform._remember_own_state()
    assert len(transform._own_history) <= BftTransform.HISTORY


def test_observe_peer_state_validates_length():
    from repro.api import BftTransform
    from repro.crypto.hashing import sha256

    cluster = Cluster(["s", "r"])
    conn, _ = cluster.connect("s", "r")
    transform = BftTransform(conn, lambda: sha256("x"))
    with pytest.raises(ValueError):
        transform.observe_peer_state(b"short")
