"""The liveness pass: LIV rules, the fixture corpus, the wait graph.

Three layers under test, mirroring the corpus under
``tests/fixtures/liveness/``:

* the static LIV001–LIV005 rules — every seeded lifecycle bug in
  ``broken/`` must be reported at exactly its line, and nothing in
  ``clean/`` may be flagged (try/finally-released holds, exclusive or
  guarded triggers, handed-off events, ordered acquisition, deadline-
  composed network waits);
* the wait-for graph — the seeded AB-BA fixture must produce a cycle
  and a ``deadlock_free: false`` verdict, the ordered twin must not;
* the real tree — zero unwaived LIV findings, and the committed
  ``benchmarks/results/wait_graph.json`` must match a fresh emission
  (the contract ``scripts/check.sh`` regresses against).

Plus the ``lint --only`` selector: exact ids and family prefixes
filter post-merge (so ``--jobs`` output stays byte-identical), and
unknown selectors exit 2 listing the valid prefixes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.liveness import (
    ACQUIRE_VERBS,
    LIVENESS_RULES,
    SELF_RELEASING,
    LivenessEngine,
    wait_graph,
)
from repro.analysis.rules import collect_findings, run_rules
from repro.analysis.walker import collect_sources, default_package_root
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "liveness"
ARTIFACT = (
    Path(__file__).parent.parent / "benchmarks" / "results"
    / "wait_graph.json"
)

LIV_IDS = ("LIV001", "LIV002", "LIV003", "LIV004", "LIV005")


def _corpus_findings(corpus: str):
    sources = collect_sources([FIXTURES / corpus])
    return collect_findings(sources, [cls() for cls in LIVENESS_RULES])


# ----------------------------------------------------------------------
# Static corpus: no false negatives on broken/, no positives on clean/
# ----------------------------------------------------------------------

def test_broken_corpus_every_rule_fires():
    fired = {f.rule for f in _corpus_findings("broken")}
    assert fired == set(LIV_IDS)


def test_broken_corpus_detects_exactly_the_seeded_violations():
    expected = {
        ("LIV001", "repro.sim.leak", 11),          # never released
        ("LIV001", "repro.sim.leak", 16),          # release outside finally
        ("LIV002", "repro.sim.double_trigger", 8),   # sequential re-trigger
        ("LIV002", "repro.sim.double_trigger", 14),  # loop outlives event
        ("LIV003", "repro.sim.lost_wakeup", 7),    # no reachable trigger
        ("LIV004", "repro.sim.deadlock", 13),      # AB-BA cycle
        ("LIV005", "repro.roce.unbounded", 11),    # pending w/o deadline
        ("LIV005", "repro.roce.unbounded", 17),    # while True get()
    }
    got = {(f.rule, f.module, f.line) for f in _corpus_findings("broken")}
    assert got == expected, (
        f"missed: {expected - got}; spurious: {got - expected}"
    )


def test_clean_corpus_is_silent():
    assert _corpus_findings("clean") == []


def test_liv001_message_names_resource_and_missing_release():
    leak = next(
        f for f in _corpus_findings("broken")
        if f.rule == "LIV001" and f.line == 11
    )
    assert "self.lock.acquire()" in leak.message
    assert "self.lock.release()" in leak.message


def test_liv004_message_names_the_ring_and_the_holders():
    cycle = next(
        f for f in _corpus_findings("broken") if f.rule == "LIV004"
    )
    assert "TwoLocks.lock_a -> " in cycle.message
    assert "TwoLocks.forward" in cycle.message
    assert "TwoLocks.backward" in cycle.message
    assert "acquisition order" in cycle.message


def test_liv005_points_at_the_sanctioned_deadline_idiom():
    pending = next(
        f for f in _corpus_findings("broken")
        if f.rule == "LIV005" and f.line == 11
    )
    assert "RpcEndpoint.call" in pending.message


# ----------------------------------------------------------------------
# The wait-for graph
# ----------------------------------------------------------------------

def test_fixture_wait_graph_flags_the_abba_cycle():
    sources = collect_sources([FIXTURES / "broken"])
    graph = wait_graph(sources, systems={"fix": ("repro.sim.deadlock",)})
    system = graph["systems"]["fix"]
    assert system["deadlock_free"] is False
    assert len(system["cycles"]) == 1
    cycle = system["cycles"][0]
    assert cycle["resources"] == [
        "repro.sim.deadlock.TwoLocks.lock_a",
        "repro.sim.deadlock.TwoLocks.lock_b",
    ]
    holders = {edge["holder"] for edge in cycle["edges"]}
    assert holders == {
        "repro.sim.deadlock.TwoLocks.forward",
        "repro.sim.deadlock.TwoLocks.backward",
    }


def test_fixture_wait_graph_ordered_twin_is_deadlock_free():
    sources = collect_sources([FIXTURES / "clean"])
    graph = wait_graph(sources, systems={"fix": ("repro.sim.ordered",)})
    system = graph["systems"]["fix"]
    assert system["deadlock_free"] is True
    assert system["cycles"] == []
    # Same acquisition order twice: edges exist, but only a -> b.
    pairs = {(e["holds"], e["waits_on"]) for e in system["edges"]}
    assert pairs == {(
        "repro.sim.ordered.OrderedLocks.lock_a",
        "repro.sim.ordered.OrderedLocks.lock_b",
    )}


def test_fixture_leak_inventory_is_pre_waiver():
    sources = collect_sources([FIXTURES / "broken"])
    graph = wait_graph(sources, systems={})
    assert graph["totals"]["leak_sites"] == 2
    assert all(leak["waived"] is False for leak in graph["leaks"])


def test_engine_vocabulary_is_consistent():
    # Every acquire verb has a release verb, and the self-releasing
    # helpers are not acquire verbs (their callee owns the span).
    assert set(ACQUIRE_VERBS) == {"acquire", "request", "exclusive_regs"}
    assert SELF_RELEASING.isdisjoint(ACQUIRE_VERBS)


def test_engine_hits_are_deterministically_ordered():
    sources = collect_sources([FIXTURES / "broken"])
    a = LivenessEngine(sources)
    b = LivenessEngine(sources)
    key = lambda h: (str(h.src.path), h.line, h.col, h.rule_id)  # noqa: E731
    assert [key(h) for h in a.hits] == [key(h) for h in b.hits]
    assert [key(h) for h in a.hits] == sorted(key(h) for h in a.hits)


# ----------------------------------------------------------------------
# The real tree and the committed artifact
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_sources():
    return collect_sources([default_package_root()])


@pytest.mark.lint
def test_real_tree_has_no_unwaived_liv_findings(real_sources):
    findings = run_rules(real_sources, [cls() for cls in LIVENESS_RULES])
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.lint
def test_real_tree_every_system_is_deadlock_free(real_sources):
    graph = wait_graph(real_sources)
    for name, system in graph["systems"].items():
        assert system["deadlock_free"] is True, (
            f"{name} has wait-for cycles: {system['cycles']}"
        )


@pytest.mark.lint
def test_committed_wait_graph_matches_fresh_emission(real_sources):
    # The artifact scripts/check.sh gates against must be regenerated
    # whenever the liveness surface changes:
    #   python -m repro lint --wait-graph benchmarks/results/wait_graph.json
    committed = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    fresh = wait_graph(real_sources)
    assert committed == fresh, (
        "benchmarks/results/wait_graph.json is stale — regenerate with "
        "`python -m repro lint --wait-graph benchmarks/results/"
        "wait_graph.json`"
    )


@pytest.mark.lint
def test_real_tree_waived_leaks_still_counted(real_sources):
    # Resource.locked is acquire-only by design: waived inline, but the
    # pre-waiver inventory must still carry the site.
    graph = wait_graph(real_sources)
    locked = [
        leak for leak in graph["leaks"]
        if leak["module"] == "repro.sim.resources"
    ]
    assert len(locked) == 1
    assert locked[0]["waived"] is True


# ----------------------------------------------------------------------
# lint --only and the --wait-graph CLI surface
# ----------------------------------------------------------------------

def test_only_prefix_filters_to_the_family(capsys):
    target = str(FIXTURES / "broken")
    assert main(["lint", target, "--only", "LIV", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 8
    assert all(f["rule"].startswith("LIV") for f in payload["findings"])


def test_only_exact_rule_filters_to_one_rule(capsys):
    target = str(FIXTURES / "broken")
    assert main(
        ["lint", target, "--only", "LIV004", "--format", "json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["findings"]} == {"LIV004"}


def test_only_with_no_matching_findings_exits_clean(capsys):
    target = str(FIXTURES / "clean")
    assert main(["lint", target, "--only", "LIV"]) == 0
    assert "clean" in capsys.readouterr().out


def test_only_unknown_selector_exits_2_listing_prefixes(capsys):
    assert main(["lint", "--only", "NOPE"]) == 2
    err = capsys.readouterr().err
    assert "NOPE" in err
    for prefix in ("DET", "LIV", "PERF", "SHD"):
        assert prefix in err


def test_only_composes_with_jobs_byte_identically(capsys):
    target = str(FIXTURES / "broken")
    assert main(["lint", target, "--only", "LIV", "--format", "json"]) == 1
    serial = capsys.readouterr().out
    assert main(
        ["lint", target, "--only", "LIV", "--format", "json", "--jobs", "4"]
    ) == 1
    assert capsys.readouterr().out == serial


def test_wait_graph_cli_writes_artifact_and_summarises(tmp_path, capsys):
    out_path = tmp_path / "results" / "wait_graph.json"
    assert main(["lint", "--wait-graph", str(out_path)]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["schema"] == 1
    assert set(payload["systems"]) == {"a2m", "bft", "chain", "peer_review"}
    assert "deadlock-free" in out
    assert "wait graph written to" in out
