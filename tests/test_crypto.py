"""Unit tests for the cryptographic substrate."""

import pytest

from repro.crypto import (
    Certificate,
    CertificateError,
    HmacEngine,
    VerificationCache,
    generate_keypair,
    hmac_sha256,
    hmac_verify,
    reset_verification_cache,
    sha256,
    verification_cache_stats,
)
from repro.crypto.certificates import verify_chain
from repro.crypto.hashing import canonical_bytes
from repro.sim import Simulator

KEY = b"0123456789abcdef0123456789abcdef"


def test_hmac_roundtrip():
    mac = hmac_sha256(KEY, b"hello", 7)
    assert hmac_verify(KEY, mac, b"hello", 7)


def test_hmac_detects_payload_change():
    mac = hmac_sha256(KEY, b"hello", 7)
    assert not hmac_verify(KEY, mac, b"hellO", 7)
    assert not hmac_verify(KEY, mac, b"hello", 8)


def test_hmac_wrong_key_fails():
    mac = hmac_sha256(KEY, b"hello")
    assert not hmac_verify(b"another-key-of-32-bytes-length!!", mac, b"hello")


def test_hmac_requires_key():
    with pytest.raises(ValueError):
        hmac_sha256(b"", b"data")


def test_canonical_encoding_prevents_concat_ambiguity():
    assert canonical_bytes([b"ab", b"c"]) != canonical_bytes([b"a", b"bc"])
    assert sha256("ab", "c") != sha256("a", "bc")


def test_canonical_encoding_types():
    data = canonical_bytes(["s", b"b", 12, True, ["nested", 3]])
    assert isinstance(data, bytes)
    with pytest.raises(TypeError):
        canonical_bytes([3.14])


def test_hmac_engine_charges_pipeline_time():
    sim = Simulator()
    engine = HmacEngine(sim)
    result = {}

    def run():
        mac = yield engine.compute(KEY, b"x" * 100)
        result["mac"] = mac
        result["t"] = sim.now

    sim.run(sim.process(run()))
    assert result["mac"] == hmac_sha256(KEY, b"x" * 100)
    assert result["t"] > 0
    assert engine.operations == 1


def test_hmac_engine_serialises_concurrent_ops():
    sim = Simulator()
    engine = HmacEngine(sim)
    finish_times = []

    def run():
        yield engine.compute(KEY, b"a" * 1000)
        finish_times.append(sim.now)

    sim.process(run())
    sim.process(run())
    sim.run()
    assert len(finish_times) == 2
    # Second op queues behind the first: roughly double the time.
    assert finish_times[1] == pytest.approx(2 * finish_times[0], rel=0.01)


def test_rsa_sign_verify():
    keys = generate_keypair(seed="test-device")
    sig = keys.sign(b"measurement")
    assert keys.public.verify(b"measurement", sig)
    assert not keys.public.verify(b"tampered", sig)
    assert not keys.public.verify(b"measurement", sig + 1)


def test_rsa_deterministic_from_seed():
    a = generate_keypair(seed=42)
    b = generate_keypair(seed=42)
    c = generate_keypair(seed=43)
    assert a.public == b.public
    assert a.public != c.public


def test_rsa_signature_out_of_range_rejected():
    keys = generate_keypair(seed=1)
    assert not keys.public.verify(b"m", 0)
    assert not keys.public.verify(b"m", keys.public.modulus + 5)


def test_certificate_issue_and_verify():
    issuer = generate_keypair(seed="issuer")
    subject = generate_keypair(seed="subject")
    cert = Certificate.issue(
        "vendor", issuer, "device-1", subject.public, {"measurement": b"abc"}
    )
    cert.verify(issuer.public)


def test_certificate_tamper_detected():
    issuer = generate_keypair(seed="issuer")
    subject = generate_keypair(seed="subject")
    cert = Certificate.issue(
        "vendor", issuer, "device-1", subject.public, {"measurement": b"abc"}
    )
    forged = Certificate(
        subject="device-2",
        subject_key=cert.subject_key,
        payload=cert.payload,
        issuer=cert.issuer,
        signature=cert.signature,
    )
    with pytest.raises(CertificateError):
        forged.verify(issuer.public)


def test_certificate_chain():
    root = generate_keypair(seed="root")
    mid = generate_keypair(seed="mid")
    leaf = generate_keypair(seed="leaf")
    mid_cert = Certificate.issue("root", root, "mid", mid.public, {})
    leaf_cert = Certificate.issue("mid", mid, "leaf", leaf.public, {})
    verify_chain([leaf_cert, mid_cert], {"root": root.public})

    with pytest.raises(CertificateError):
        verify_chain([leaf_cert, mid_cert], {"other": root.public})
    with pytest.raises(CertificateError):
        verify_chain([], {"root": root.public})


def test_certificate_chain_broken_link():
    root = generate_keypair(seed="root")
    mid = generate_keypair(seed="mid")
    leaf = generate_keypair(seed="leaf")
    mid_cert = Certificate.issue("root", root, "mid", mid.public, {})
    # Leaf claims an issuer that doesn't match the next certificate.
    leaf_cert = Certificate.issue("elsewhere", mid, "leaf", leaf.public, {})
    with pytest.raises(CertificateError, match="broken chain"):
        verify_chain([leaf_cert, mid_cert], {"root": root.public})


# ----------------------------------------------------------------------
# Verification cache: wall-clock memoization that can never change a
# security outcome.
# ----------------------------------------------------------------------
def test_verification_cache_hits_on_reverification():
    reset_verification_cache()
    mac = hmac_sha256(KEY, b"forwarded", 3)
    assert hmac_verify(KEY, mac, b"forwarded", 3)
    before = verification_cache_stats()
    # A second receiver re-verifying the identical attested message —
    # the transferable-authentication pattern.
    assert hmac_verify(KEY, mac, b"forwarded", 3)
    after = verification_cache_stats()
    assert after["hits"] == before["hits"] + 1
    reset_verification_cache()


def test_verification_cache_never_stale_for_changed_counter():
    """The negative test from the issue: a warm cache must not leak a
    stale 'valid' verdict to a same-payload message whose counter
    advanced (the equivocation case the counters exist to catch)."""
    reset_verification_cache()
    counter = 7
    mac = hmac_sha256(KEY, b"payload", counter)
    # Warm the cache with the genuine verification.
    assert hmac_verify(KEY, mac, b"payload", counter)
    # Same alpha presented with counter+1 must fail despite the warm
    # cache: the counter is inside the cached message encoding.
    assert not hmac_verify(KEY, mac, b"payload", counter + 1)
    # And both outcomes are themselves deterministic on re-query.
    assert not hmac_verify(KEY, mac, b"payload", counter + 1)
    assert hmac_verify(KEY, mac, b"payload", counter)
    reset_verification_cache()


def test_verification_cache_distinguishes_keys():
    reset_verification_cache()
    other = b"another-key-of-32-bytes-length!!"
    mac = hmac_sha256(KEY, b"data")
    assert hmac_verify(KEY, mac, b"data")
    assert not hmac_verify(other, mac, b"data")
    reset_verification_cache()


def test_verification_cache_lru_bounded():
    cache = VerificationCache(capacity=2)
    cache.store(("k1",), True)
    cache.store(("k2",), True)
    assert cache.lookup(("k1",)) is True  # refresh k1
    cache.store(("k3",), True)  # evicts k2 (least recent)
    assert cache.lookup(("k2",)) is None
    assert cache.lookup(("k1",)) is True
    assert cache.lookup(("k3",)) is True
    assert len(cache) == 2


def test_canonical_memo_distinguishes_bool_from_int():
    # hash(True) == hash(1) and True == 1, but the canonical encodings
    # differ — the memo must key on types, not just values.
    assert canonical_bytes((True,)) != canonical_bytes((1,))
    assert canonical_bytes((1,)) != canonical_bytes((True,))
    assert canonical_bytes(((True,),)) != canonical_bytes(((1,),))
    # And memoized reruns return the identical encoding.
    assert canonical_bytes((True, "x")) == canonical_bytes((True, "x"))
