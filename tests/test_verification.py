"""Model-checking tests: the paper's lemmas hold for the TNIC model
and are violated by deliberately broken variants (§4.4, Appendix B)."""

import pytest

from repro.verification import (
    AttestationPhaseModel,
    BrokenNoCounterModel,
    BrokenNoMacModel,
    COMMUNICATION_LEMMAS,
    TnicCommunicationModel,
    check_lemma,
    explore,
    lemma_attestation_precedence,
)
from repro.verification.checker import reachable

DEPTH = 7


@pytest.mark.parametrize("name,lemma", sorted(COMMUNICATION_LEMMAS.items()))
def test_communication_lemmas_hold_for_tnic(name, lemma):
    model = TnicCommunicationModel(max_sends=3)
    result = check_lemma(model, lemma, max_depth=DEPTH, name=name)
    assert result.holds, result.describe()
    assert result.states_explored > 10


def test_sanity_protocol_can_deliver_all_messages():
    """Tamarin's send_sanity analogue: a complete happy-path run exists."""
    model = TnicCommunicationModel(max_sends=2)

    def all_delivered(trace):
        accepts = [e for e in trace if e.kind == "accept"]
        return len(accepts) == 2

    assert reachable(model, all_delivered, max_depth=DEPTH)


def test_broken_no_counter_model_violates_replay_lemma():
    """Removing the continuity check admits double acceptance."""
    model = BrokenNoCounterModel(max_sends=2)
    result = check_lemma(
        model, COMMUNICATION_LEMMAS["no_double_messages"], max_depth=DEPTH
    )
    assert not result.holds
    assert result.counterexample is not None
    accepts = [e for e in result.counterexample if e.kind == "accept"]
    assert len(accepts) > len({(e.payload, e.counter) for e in accepts})


def test_broken_no_counter_model_violates_reordering_lemma():
    model = BrokenNoCounterModel(max_sends=3)
    result = check_lemma(
        model, COMMUNICATION_LEMMAS["no_message_reordering"], max_depth=DEPTH
    )
    assert not result.holds


def test_broken_no_mac_model_violates_authentication():
    """Removing the MAC check lets injected messages be accepted."""
    model = BrokenNoMacModel(max_sends=1)
    result = check_lemma(
        model, COMMUNICATION_LEMMAS["verified_msg_is_auth"], max_depth=DEPTH
    )
    assert not result.holds
    assert any(
        e.kind == "accept" and e.payload == "evil" for e in result.counterexample
    )


def test_compromised_key_breaks_authentication():
    """Appendix B: key compromise is modelled; with the session key the
    adversary can forge accepted messages."""
    model = TnicCommunicationModel(max_sends=1, compromised=True)
    result = check_lemma(
        model, COMMUNICATION_LEMMAS["verified_msg_is_auth"], max_depth=DEPTH
    )
    assert not result.holds


def test_uncompromised_adversary_cannot_inject():
    """With only its own key, no injected message is ever accepted."""
    model = TnicCommunicationModel(max_sends=2)
    reached, _ = explore(model, max_depth=DEPTH)
    for state, labels in reached:
        assert not any(label.startswith("inject") for label in labels)


def test_attestation_lemma_holds():
    """Eq. 1: vendor completion implies prior device completion."""
    model = AttestationPhaseModel()
    result = check_lemma(
        model, lemma_attestation_precedence, max_depth=6,
        name="initialization_attested",
    )
    assert result.holds, result.describe()


def test_attestation_sanity_vendor_can_finish():
    model = AttestationPhaseModel()
    assert reachable(
        model,
        lambda trace: any(e.kind == "vendor_done" for e in trace),
        max_depth=6,
    )


def test_vendor_never_finishes_without_genuine_device():
    """With no genuine device participating, forged/stale reports never
    convince the vendor."""
    model = AttestationPhaseModel(allow_genuine=False)
    assert not reachable(
        model,
        lambda trace: any(e.kind == "vendor_done" for e in trace),
        max_depth=8,
    )


def test_check_result_describe():
    model = BrokenNoCounterModel(max_sends=2)
    result = check_lemma(
        model, COMMUNICATION_LEMMAS["no_double_messages"], max_depth=DEPTH
    )
    text = result.describe()
    assert "VIOLATED" in text
    assert "counterexample" in text

    ok = check_lemma(
        TnicCommunicationModel(max_sends=1),
        COMMUNICATION_LEMMAS["no_double_messages"],
        max_depth=4,
    )
    assert "verified" in ok.describe()


def test_mac_splicing_never_accepted():
    """Re-using a genuine MAC over modified fields (payload splice)
    is explored by the model and never verifies."""
    model = TnicCommunicationModel(max_sends=2)
    reached, _ = explore(model, max_depth=DEPTH)
    for _state, labels in reached:
        assert not any(label.startswith("splice") for label in labels)


def test_broken_mac_model_accepts_splices():
    """The MAC-less mutant accepts spliced messages, confirming the
    splice rule genuinely exercises the check.  (In full exploration
    splice successors dedupe against inject successors, so the rule is
    probed directly on a post-send state.)"""
    model = BrokenNoMacModel(max_sends=1)
    state = model.initial_state()
    (_, after_send), *_ = list(model.transitions(state))
    labels = [label for label, _ in model.transitions(after_send)]
    assert any(label.startswith("splice") for label in labels)

    sound = TnicCommunicationModel(max_sends=1)
    sound_state = sound.initial_state()
    (_, sound_after_send), *_ = list(sound.transitions(sound_state))
    sound_labels = [label for label, _ in sound.transitions(sound_after_send)]
    assert not any(label.startswith("splice") for label in sound_labels)
