"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import DeterministicRng, Pipe, Resource, Simulator, Store
from repro.sim.clock import EmptySchedule
from repro.sim.events import Interrupt


def test_timeout_advances_clock():
    sim = Simulator()
    t = sim.timeout(5.0, "done")
    assert sim.run(t) == "done"
    assert sim.now == 5.0


def test_timeouts_fire_in_order():
    sim = Simulator()
    seen = []
    for delay in (3.0, 1.0, 2.0):
        sim.timeout(delay).callbacks.append(
            lambda _e, d=delay: seen.append((d, sim.now))
        )
    sim.run()
    assert seen == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(EmptySchedule):
        sim.step()


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()
    sim.timeout(10.0)
    sim.run(until=4.0)
    assert sim.now == 4.0


def test_process_sequencing_and_return_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return "finished"

    proc = sim.process(worker())
    assert sim.run(proc) == "finished"
    assert sim.now == 5.0


def test_process_waits_on_other_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(4.0)
        log.append(("child", sim.now))
        return 42

    def parent():
        result = yield sim.process(child())
        log.append(("parent", sim.now))
        return result

    assert sim.run(sim.process(parent())) == 42
    assert log == [("child", 4.0), ("parent", 4.0)]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def failing():
        yield sim.timeout(1.0)
        raise RuntimeError("boom")

    proc = sim.process(failing())
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(proc)


def test_process_interrupt():
    sim = Simulator()
    outcome = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            outcome.append(exc.cause)
        return "woken"

    proc = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(5.0)
        proc.interrupt("wake-up")

    sim.process(interrupter())
    assert sim.run(proc) == "woken"
    assert outcome == ["wake-up"]
    assert sim.now == pytest.approx(5.0)


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    proc = sim.process(bad())
    with pytest.raises(TypeError):
        sim.run(proc)


def test_any_of_and_all_of():
    sim = Simulator()
    fast = sim.timeout(1.0, "fast")
    slow = sim.timeout(5.0, "slow")

    def waiter():
        first = yield sim.any_of([fast, slow])
        assert fast in first
        both = yield sim.all_of([fast, slow])
        return sorted(both.values())

    assert sim.run(sim.process(waiter())) == ["fast", "slow"]
    assert sim.now == 5.0


def test_resource_mutual_exclusion():
    sim = Simulator()
    lock = Resource(sim, capacity=1)
    order = []

    def user(name, hold):
        yield lock.acquire()
        order.append((name, "in", sim.now))
        yield sim.timeout(hold)
        order.append((name, "out", sim.now))
        lock.release()

    sim.process(user("a", 3.0))
    sim.process(user("b", 2.0))
    sim.run()
    assert order == [
        ("a", "in", 0.0),
        ("a", "out", 3.0),
        ("b", "in", 3.0),
        ("b", "out", 5.0),
    ]


def test_resource_release_without_acquire():
    sim = Simulator()
    lock = Resource(sim)
    with pytest.raises(RuntimeError):
        lock.release()


def test_store_fifo_and_blocking():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            got.append((item, sim.now))

    def producer():
        yield sim.timeout(1.0)
        store.put("x")
        yield sim.timeout(1.0)
        store.put("y")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert got == [("x", 1.0), ("y", 2.0)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(1)
    assert store.try_get() == 1


def test_pipe_serialises_transfers():
    sim = Simulator()
    pipe = Pipe(sim, bandwidth_bytes_per_us=100.0, propagation_us=1.0)
    done = []
    pipe.transfer(200).callbacks.append(lambda _e: done.append(sim.now))
    pipe.transfer(100).callbacks.append(lambda _e: done.append(sim.now))
    sim.run()
    # First: 2us serialisation + 1us propagation; second queues behind it.
    assert done == [pytest.approx(3.0), pytest.approx(4.0)]
    assert pipe.bytes_transferred == 300


def test_rng_determinism_and_stream_independence():
    a1 = DeterministicRng(7, "x")
    a2 = DeterministicRng(7, "x")
    b = DeterministicRng(7, "y")
    seq1 = [a1.random() for _ in range(5)]
    seq2 = [a2.random() for _ in range(5)]
    seq3 = [b.random() for _ in range(5)]
    assert seq1 == seq2
    assert seq1 != seq3


def test_rng_chance_bounds():
    rng = DeterministicRng(1)
    with pytest.raises(ValueError):
        rng.chance(1.5)
    assert rng.chance(0.0) is False
    assert rng.chance(1.0) is True


def test_store_cancel_get_prevents_item_swallowing():
    sim = Simulator()
    store = Store(sim)
    abandoned = store.get()
    store.cancel_get(abandoned)
    store.put("item")
    assert store.try_get() == "item"
    # Cancelling twice (or a fulfilled get) is a no-op.
    store.cancel_get(abandoned)


def test_store_abandoned_get_would_swallow_without_cancel():
    sim = Simulator()
    store = Store(sim)
    abandoned = store.get()
    store.put("item")
    sim.run()
    # The abandoned getter consumed it (documented hazard).
    assert store.try_get() is None
    assert abandoned.value == "item"


# ----------------------------------------------------------------------
# Same-timestamp ordering: every scheduling path draws from one global
# tiebreak counter, so simultaneous events process in FIFO scheduling
# order regardless of which primitive enqueued them.
# ----------------------------------------------------------------------
def test_same_timestamp_fifo_across_scheduling_paths():
    sim = Simulator()
    order = []

    # Interleave the three scheduling paths at the same instant: the
    # Timeout fast lane, succeed() (_enqueue_triggered) and
    # delayed_call (Timeout + callback).
    t1 = sim.timeout(5.0)
    t1.callbacks.append(lambda _e: order.append("timeout-1"))
    e1 = sim.event()
    e1.succeed()
    e1.callbacks.append(lambda _e: order.append("triggered-1"))
    sim.delayed_call(5.0, lambda: order.append("delayed-1"))
    t2 = sim.timeout(5.0)
    t2.callbacks.append(lambda _e: order.append("timeout-2"))
    e2 = sim.event()
    e2.succeed()
    e2.callbacks.append(lambda _e: order.append("triggered-2"))

    sim.run()
    # Time 0 first (both triggered events, FIFO), then the 5.0 batch in
    # exact scheduling order.
    assert order == [
        "triggered-1", "triggered-2", "timeout-1", "delayed-1", "timeout-2"
    ]


def test_same_timestamp_fifo_for_events_scheduled_during_run():
    sim = Simulator()
    order = []

    def spawner(_event):
        # Scheduled while the loop is draining: these land in the live
        # heap, and must still run FIFO among themselves and *after*
        # already-pending events at the same timestamp.
        a = sim.timeout(0.0)
        a.callbacks.append(lambda _e: order.append("fresh-a"))
        b = sim.timeout(0.0)
        b.callbacks.append(lambda _e: order.append("fresh-b"))

    first = sim.timeout(1.0)
    first.callbacks.append(spawner)
    pending = sim.timeout(1.0)
    pending.callbacks.append(lambda _e: order.append("pending"))
    sim.run()
    assert order == ["pending", "fresh-a", "fresh-b"]


def test_run_is_not_reentrant():
    sim = Simulator()

    def nested(_event):
        with pytest.raises(RuntimeError, match="event loop"):
            sim.run()

    trigger = sim.timeout(1.0)
    trigger.callbacks.append(nested)
    sim.run()
