"""The shard-safety pass: ownership domains, SHD rules, the manifest.

Three layers under test, mirroring the corpus under
``tests/fixtures/ownership/``:

* the static SHD001–SHD003 rules — every seeded violation in
  ``broken/`` must be reported at exactly its line, and nothing in
  ``clean/`` may be flagged;
* the domain assignment itself — allocation sites must land in
  ``replica-local``, channel factories in ``link``, constructor-argument
  aliases in ``shared``, and per-replica allocation shapes must mark the
  class a replica;
* the partition manifest — the real tree's ``chain`` and ``a2m`` must
  be ``shardable: true`` with zero findings, ``peer_review`` must stay
  blocked by its waived findings, and channel edges must carry message
  types (the contract ROADMAP item 1's engine consumes).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.ownership import (
    OWNERSHIP_RULES,
    SYSTEM_MODULES,
    OwnershipEngine,
    partition_manifest,
)
from repro.analysis.rules import collect_findings, rule_catalog, run_rules
from repro.analysis.walker import collect_sources, default_package_root
from repro.sim.shard import CrossShard, cross_shard

FIXTURES = Path(__file__).parent / "fixtures" / "ownership"


def _corpus_findings(corpus: str):
    sources = collect_sources([FIXTURES / corpus])
    return collect_findings(sources, [cls() for cls in OWNERSHIP_RULES])


# ----------------------------------------------------------------------
# Static corpus: no false negatives on broken/, no positives on clean/
# ----------------------------------------------------------------------

def test_broken_corpus_every_rule_fires():
    fired = {f.rule for f in _corpus_findings("broken")}
    assert fired == {"SHD001", "SHD002", "SHD003"}


def test_broken_corpus_detects_exactly_the_seeded_violations():
    expected = {
        ("SHD001", "repro.escape_ledger", 31),   # collect(self.log)
        ("SHD001", "repro.escape_ledger", 33),   # system.latest = self.log
        ("SHD003", "repro.escape_ledger", 33),   # ... is also a shared write
        ("SHD002", "repro.global_residency", 4),  # TALLIES definition
        ("SHD003", "repro.cross_call", 31),      # grid.faults.append
        ("SHD003", "repro.cross_call", 33),      # workers["w0"].step(...)
        ("SHD003", "repro.cross_call", 35),      # grid.tally.finished = 1
    }
    got = {(f.rule, f.module, f.line) for f in _corpus_findings("broken")}
    assert got == expected, (
        f"missed: {expected - got}; spurious: {got - expected}"
    )


def test_clean_corpus_is_silent():
    assert _corpus_findings("clean") == []


def test_shd002_message_names_mutators_and_accessors():
    finding = next(f for f in _corpus_findings("broken")
                   if f.rule == "SHD002")
    assert "TALLIES" in finding.message
    assert "Peer.run" in finding.message
    assert "Peer.drain" in finding.message


# ----------------------------------------------------------------------
# Domain assignment
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def broken_engine():
    return OwnershipEngine(collect_sources([FIXTURES / "broken"]))


@pytest.fixture(scope="module")
def clean_engine():
    return OwnershipEngine(collect_sources([FIXTURES / "clean"]))


def test_allocation_sites_are_replica_local(broken_engine):
    node = broken_engine.classes["repro.escape_ledger.Node"]
    assert node.attrs["log"].domain == "replica-local"
    assert node.attrs["log"].mutable


def test_constructor_argument_alias_is_shared(broken_engine):
    node = broken_engine.classes["repro.escape_ledger.Node"]
    assert node.attrs["system"].domain == "shared"
    # The annotation binds the alias to the System class, so chains
    # through `self.system` resolve against System's own domains.
    assert node.attrs["system"].points_to == "repro.escape_ledger.System"


def test_channel_factories_are_link_domain(clean_engine):
    system = clean_engine.classes["repro.channel_ledger.System"]
    node = clean_engine.classes["repro.channel_ledger.Node"]
    assert system.attrs["network"].domain == "link"
    assert node.attrs["inbox"].domain == "link"


def test_per_replica_allocation_marks_the_class_a_replica(broken_engine):
    assert broken_engine.classes["repro.escape_ledger.Node"].replica
    assert broken_engine.classes["repro.global_residency.Peer"].replica
    assert broken_engine.classes["repro.cross_call.Worker"].replica
    assert not broken_engine.classes["repro.escape_ledger.System"].replica
    assert not broken_engine.classes["repro.cross_call.Grid"].replica


def test_domain_conflicts_join_upward():
    sources = collect_sources([FIXTURES / "broken"])
    engine = OwnershipEngine(sources)
    # A joined lattice never demotes: shared absorbs replica-local.
    from repro.analysis.ownership import _join
    assert _join("replica-local", "shared") == "shared"
    assert _join("link", "replica-local") == "link"
    assert _join("shared", "link") == "shared"
    del engine


# ----------------------------------------------------------------------
# The cross_shard annotation
# ----------------------------------------------------------------------

def test_cross_shard_is_identity_at_runtime():
    log = [1, 2, 3]
    assert cross_shard(log, "audit snapshot") is log


def test_cross_shard_marker_carries_value_and_reason():
    marker = CrossShard({"k": 1}, reason="handoff")
    assert marker.value == {"k": 1}
    assert marker.reason == "handoff"


def test_cross_shard_sanctions_the_escape(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    template = """
class System:
    def __init__(self, names):
        self.sink = Sink()
        self.nodes = [Node(n, self) for n in names]

class Sink:
    def __init__(self):
        self.seen = []
    def take(self, v):
        self.seen.append(v)

class Node:
    def __init__(self, name, system: "System"):
        self.name = name
        self.system = system
        self.log = []

    def run(self, sim):
        yield sim.timeout(1)
        self.system.sink.take({arg})
"""
    (pkg / "bare.py").write_text(template.format(arg="self.log"))
    (pkg / "marked.py").write_text(
        template.format(arg="cross_shard(self.log)")
    )
    sources = collect_sources([tmp_path])
    findings = collect_findings(sources, [cls() for cls in OWNERSHIP_RULES])
    assert {(f.rule, f.module) for f in findings} == {("SHD001", "repro.bare")}


# ----------------------------------------------------------------------
# Rule registration
# ----------------------------------------------------------------------

def test_shd_rules_registered_in_catalog():
    catalog = rule_catalog()
    for rule_id in ("SHD001", "SHD002", "SHD003"):
        assert rule_id in catalog
        assert catalog[rule_id]


def test_shd_rules_carry_explanations():
    for cls in OWNERSHIP_RULES:
        rule = cls()
        assert rule.explanation, f"{rule.rule_id} has no --explain text"


# ----------------------------------------------------------------------
# The real tree and the partition manifest
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def real_sources():
    return collect_sources([default_package_root()])


@pytest.mark.lint
def test_real_tree_has_no_unwaived_shd_findings(real_sources):
    findings = [
        f for f in run_rules(
            real_sources, [cls() for cls in OWNERSHIP_RULES]
        )
    ]
    assert findings == [], "\n".join(f.render() for f in findings)


@pytest.mark.lint
def test_manifest_chain_and_a2m_are_shardable(real_sources):
    manifest = partition_manifest(real_sources)
    assert set(manifest["systems"]) == set(SYSTEM_MODULES)
    assert manifest["systems"]["chain"]["shardable"] is True
    assert manifest["systems"]["a2m"]["shardable"] is True
    assert manifest["systems"]["chain"]["blocking_findings"] == []
    assert manifest["systems"]["a2m"]["blocking_findings"] == []


@pytest.mark.lint
def test_manifest_peer_review_blocked_only_by_waived_findings(real_sources):
    system = partition_manifest(real_sources)["systems"]["peer_review"]
    assert system["shardable"] is False
    assert system["blocking_findings"], "expected blocking findings"
    # Every blocker carries an inline rationale waiver: the lint gate is
    # clean, but a waiver never flips the shardable verdict.
    assert all(entry["waived"] for entry in system["blocking_findings"])


@pytest.mark.lint
def test_manifest_edges_carry_endpoints_and_message_types(real_sources):
    manifest = partition_manifest(real_sources)
    chain_edges = manifest["systems"]["chain"]["cross_shard_edges"]
    assert chain_edges, "chain should have channel edges"
    for edge in chain_edges:
        assert edge["kind"] in ("send", "broadcast", "put")
        assert edge["src"].startswith("repro.systems.")
        assert edge["message_type"]
    message_types = {edge["message_type"] for edge in chain_edges}
    assert "ChainSubmit" in message_types
    assert "ChainReply" in message_types


@pytest.mark.lint
def test_manifest_state_sets_partition_every_attribute(real_sources):
    chain = partition_manifest(real_sources)["systems"]["chain"]
    state = chain["state"]
    assert "_ChainNode.store" in state["replica-local"]
    assert "_ChainNode.inbox" in state["link"]
    assert "_ChainNode.system" in state["shared"]
    listed = {name for bucket in state.values() for name in bucket}
    from_classes = {
        f"{cls_name}.{attr}"
        for cls_name, cls in chain["classes"].items()
        for attr in cls["attributes"]
    }
    assert listed == from_classes


@pytest.mark.lint
def test_manifest_replica_roles_match_topology(real_sources):
    systems = partition_manifest(real_sources)["systems"]
    assert systems["chain"]["classes"]["_ChainNode"]["role"] == "replica"
    assert systems["chain"]["classes"]["ChainReplication"]["role"] == "singleton"
    assert systems["bft"]["classes"]["_Replica"]["role"] == "replica"
    assert systems["peer_review"]["classes"]["Witness"]["role"] == "replica"
