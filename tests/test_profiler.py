"""The deterministic profiler: attribution, the two-ledger split, and
the zero-cost-when-detached contract (mirrors test_instrument_gate.py)."""

import json

import pytest

from repro.api import Cluster, auth_send
from repro.cli import _instrumented_workload
from repro.telemetry.exporters import metrics_document
from repro.telemetry.profiler import Profiler, _callsite


def _run_auth_round(cluster: Cluster) -> None:
    conn, _ = cluster.connect("a", "b")
    cluster.run(auth_send(conn, b"profiler-test"))
    cluster.run()


class FakeClock:
    """Deterministic host-clock stand-in: advances 1000ns per read."""

    def __init__(self):
        self.now_ns = 0

    def __call__(self) -> int:
        self.now_ns += 1000
        return self.now_ns


@pytest.fixture
def account_spy(monkeypatch):
    calls = {"account": 0}
    real_account = Profiler.account

    def spy(self, *args, **kwargs):
        calls["account"] += 1
        return real_account(self, *args, **kwargs)

    monkeypatch.setattr(Profiler, "account", spy)
    return calls


def test_no_profiler_work_when_detached(account_spy):
    cluster = Cluster(["a", "b"])
    assert cluster.sim.profiler is None
    _run_auth_round(cluster)
    # Not merely "empty ledgers": the accounting hook never ran.
    assert account_spy["account"] == 0


def test_account_runs_when_attached(account_spy):
    cluster = Cluster(["a", "b"])
    profiler = Profiler.attach(cluster.sim, clock=FakeClock())
    _run_auth_round(cluster)
    assert account_spy["account"] > 0
    assert sum(profiler.events.values()) == account_spy["account"]


def test_detach_restores_the_noop_path(account_spy):
    cluster = Cluster(["a", "b"])
    profiler = Profiler.attach(cluster.sim, clock=FakeClock())
    profiler.detach()
    assert cluster.sim.profiler is None
    _run_auth_round(cluster)
    assert account_spy["account"] == 0


def test_sim_ledger_is_deterministic_across_runs():
    reports = []
    for _ in range(2):
        cluster = Cluster(["a", "b"], seed=5)
        profiler = Profiler.attach(cluster.sim, clock=FakeClock())
        _run_auth_round(cluster)
        reports.append(json.dumps(profiler.sim_report(), sort_keys=True))
    assert reports[0] == reports[1]


def test_sim_time_sums_to_final_clock():
    cluster = Cluster(["a", "b"], seed=1)
    profiler = Profiler.attach(cluster.sim, clock=FakeClock())
    _run_auth_round(cluster)
    assert sum(profiler.sim_us.values()) == pytest.approx(cluster.sim.now)


def test_callsite_attribution_names_process_generators():
    cluster = Cluster(["a", "b"], seed=0)
    profiler = Profiler.attach(cluster.sim, clock=FakeClock())
    _run_auth_round(cluster)
    keys = set(profiler.events)
    # Every key is EventType:callsite; process resumptions carry the
    # generator's qualified name, not a kernel-internal frame.
    assert all(":" in key for key in keys)
    assert any(key.startswith("Completion:") or key.startswith("Event:")
               for key in keys)


def test_callsite_fallbacks():
    assert _callsite(object(), []) == "<idle>"

    def plain(event):
        pass

    assert _callsite(object(), [plain]) == (
        "test_callsite_fallbacks.<locals>.plain"
    )


def test_host_ledger_stays_out_of_the_metrics_document():
    cluster, hub = _instrumented_workload(2, seed=0, tamper=False,
                                          profile=True)
    document = json.dumps(metrics_document(hub), sort_keys=True)
    assert "host_cpu_ns" not in document
    assert "perf_counter" not in document
    profile = cluster.sim.profiler.document()
    assert set(profile) == {
        "clock_us", "events_total", "host_cpu_ns", "host_cpu_ns_total",
        "sim",
    }
    assert profile["events_total"] == sum(
        row["events"] for row in profile["sim"].values()
    )
    assert profile["host_cpu_ns_total"] == sum(
        profile["host_cpu_ns"].values()
    )


def test_fake_clock_host_ledger_counts_reads():
    cluster = Cluster(["a", "b"], seed=0)
    clock = FakeClock()
    profiler = Profiler.attach(cluster.sim, clock=clock)
    _run_auth_round(cluster)
    total = sum(profiler.host_ns.values())
    events = sum(profiler.events.values())
    # The kernel brackets each event with two clock reads 1000ns apart.
    assert total == events * 1000


def test_profile_artifact_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "profile.json"
    assert main(["trace", "--ops", "2", "--profile", str(out)]) == 0
    capsys.readouterr()
    profile = json.loads(out.read_text())
    assert profile["events_total"] > 0
    assert "sim" in profile and "host_cpu_ns" in profile
