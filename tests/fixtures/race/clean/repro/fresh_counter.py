"""RACE002-adjacent negatives: shared state re-read after the yield,
and append-only accumulation (mutator receivers are not value reads)."""


class FreshCounter:
    """Replica whose updates stay atomic across suspensions."""

    def __init__(self, sim):
        self.sim = sim
        self.value = 0
        self.log = []

    def bump(self, amount):
        """The read happens after resuming, so it cannot go stale."""
        yield self.sim.timeout(5)
        self.value = self.value + amount

    def append_only(self):
        """Two appends spanning a yield are not a lost update."""
        self.log.append("start")
        yield self.sim.timeout(1)
        self.log.append("end")
