"""RACE-adjacent but safe patterns — nothing here may be flagged."""
