"""RACE003-adjacent negatives: snapshot before iterating, private
iterables, and yield-free loops over shared containers."""

PENDING = []


class SnapshotBroadcaster:
    """Fans out over copies, never over the live container."""

    def __init__(self, sim, peers):
        self.sim = sim
        self.peers = peers
        self.inbox = {}

    def broadcast(self, message):
        for peer in list(self.peers):
            yield self.sim.timeout(1)
            peer.deliver(message)

    def drain(self):
        for name, queue in sorted(self.inbox.items()):
            yield self.sim.timeout(1)
            queue.clear()

    def tally(self):
        """No yield inside the loop: the iteration is atomic."""
        total = 0
        for queue in self.inbox.values():
            total += len(queue)
        yield self.sim.timeout(total)


def flusher(sim, batch):
    """The iterable is a parameter, private to this activation."""
    for item in batch:
        yield sim.timeout(1)
        item.flush()
