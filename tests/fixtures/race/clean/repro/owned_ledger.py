"""RACE001-adjacent negatives: module mutables read but never
mutated from a process, and mutation from non-process code."""

CONFIG = {"timeout": 5}
REGISTRY = []


def register(name):
    """Not a process (no yield): module mutation here is setup code."""
    REGISTRY.append(name)


def reader(sim):
    """A process may *read* module-level configuration freely."""
    delay = CONFIG["timeout"]
    yield sim.timeout(delay)
    return delay


def local_buffering(sim, payloads):
    """Mutables bound inside the process are private to it."""
    buffered = []
    for payload in payloads:
        yield sim.timeout(1)
        buffered.append(payload)
    return buffered
