"""Seeded RACE001 violations: module-level mutable state mutated
from inside simulator processes."""

LEDGER = []
INDEX: dict = {}
TOTAL = 0


def recorder(sim, payload):
    """Appends to the interpreter-wide ledger from a process."""
    yield sim.timeout(1)
    LEDGER.append(payload)
    INDEX[payload] = len(LEDGER)


def accumulator(sim, amount):
    global TOTAL
    yield sim.timeout(1)
    TOTAL += amount
