"""Seeded RACE003 violations: yield while iterating shared containers."""

PENDING = []


class Broadcaster:
    """Fans a message out with a yield inside each live loop."""

    def __init__(self, sim, peers):
        self.sim = sim
        self.peers = peers
        self.inbox = {}

    def broadcast(self, message):
        for offset, peer in enumerate(self.peers):
            yield self.sim.timeout(offset)
            peer.deliver(message)

    def drain(self):
        for name, queue in self.inbox.items():
            yield self.sim.timeout(1)
            queue.clear()


def flusher(sim):
    for item in PENDING:
        yield sim.timeout(1)
        item.flush()
