"""Seeded RACE violations — every module here must be flagged."""
