"""Seeded RACE002 violations: read-modify-write spanning a yield."""


class StaleCounter:
    """Replica whose updates lose concurrent writes."""

    def __init__(self, sim):
        self.sim = sim
        self.value = 0
        self.table = {}

    def bump(self, amount):
        current = self.value
        yield self.sim.timeout(5)
        self.value = current + amount

    def merge(self, updates):
        merged = dict(self.table)
        merged.update(updates)
        yield self.sim.timeout(2)
        self.table.update(merged)
