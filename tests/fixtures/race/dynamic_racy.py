"""Executable racy fixture: two incrementers losing updates.

Each process reads the shared counter, yields (losing control at the
suspension), then writes back ``read + 1``.  Interleaved, both read the
same value and one update is lost — the classic lost-update race the
static RACE002 rule describes, here actually happening.  An attached
:class:`~repro.sanitizer.hb.Sanitizer` must report the conflicting
access pairs, and the final total must be less than ``2 * rounds``.
"""

from repro.sanitizer import SharedState
from repro.sim import Simulator


def incrementer(sim, state, rounds):
    for _ in range(rounds):
        current = state.get("total")
        yield sim.timeout(10)
        state.set("total", current + 1)


def run(sim=None, rounds=5):
    """Run the racy pair to completion; returns (sim, state).

    Pass a simulator with a sanitizer already attached to observe the
    races; the fixture itself never attaches one.
    """
    if sim is None:
        sim = Simulator()
    state = SharedState(sim, "counter", total=0)
    sim.process(incrementer(sim, state, rounds))
    sim.process(incrementer(sim, state, rounds))
    sim.run()
    return sim, state
