"""Executable clean fixture: the same increment, lock-serialised.

Identical read-yield-write shape as ``dynamic_racy``, but the whole
read-modify-write region holds a capacity-1
:class:`~repro.sim.resources.Resource`.  The release→acquire handoff is
an ``Event.succeed`` edge, so every critical section happens-before the
next: an attached sanitizer must stay silent and the final total must
be exactly ``2 * rounds``.
"""

from repro.sanitizer import SharedState
from repro.sim import Simulator
from repro.sim.resources import Resource


def incrementer(sim, lock, state, rounds):
    for _ in range(rounds):
        yield lock.acquire()
        current = state.get("total")
        yield sim.timeout(10)
        state.set("total", current + 1)
        lock.release()


def run(sim=None, rounds=5):
    """Run the serialised pair to completion; returns (sim, state)."""
    if sim is None:
        sim = Simulator()
    lock = Resource(sim, capacity=1)
    state = SharedState(sim, "counter", total=0)
    sim.process(incrementer(sim, lock, state, rounds))
    sim.process(incrementer(sim, lock, state, rounds))
    sim.run()
    return sim, state
