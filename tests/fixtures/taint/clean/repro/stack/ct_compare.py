"""SEC002 negative: constant-time comparison of key-derived MACs."""


def authenticate(store, session_id, provided_mac, payload):
    key = store.key_for(session_id)
    return compare_digest(hmac_sha256(key, payload), provided_mac)
