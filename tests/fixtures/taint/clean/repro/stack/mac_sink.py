"""SEC001 negative: only HMAC *outputs* reach egress sinks.

The key itself feeds hmac_sha256 (a sanitizer: one-way by
construction), and only the MAC travels — exactly what the attestation
kernel does with certificates.
"""


def publish_mac(sim, store, session_id, payload):
    key = store.key_for(session_id)
    emit(sim, "stack.mac", hmac_sha256(key, payload))


def send_attested(mac, store, session_id, payload):
    certificate = hmac_sha256(store.key_for(session_id), payload)
    mac.transmit(certificate)
