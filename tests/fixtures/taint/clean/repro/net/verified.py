"""TNT001 negative: verification gates the counter advance.

verify_event() is a sanitizer — its result is attested-clean — so the
counter mutation below consumes verified data, not raw wire bytes.
"""


class GoodReceiver:
    def pump(self):
        while True:
            packet = yield self.rx_queue.get()
            event = self.attestation.verify_event(packet.session_id, packet)
            self.counters.advance_recv(event.session_id)
