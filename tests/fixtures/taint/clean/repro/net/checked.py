"""TNT002 negative: the verification result is bound and acted on."""


def deliver(kernel, session_id, message, queue):
    ok = kernel.check_transferable(session_id, message)
    if not ok:
        raise ValueError("attestation failed")
    queue.append(message)


def open_sealed(key, mac, payload):
    if not hmac_verify(key, mac, payload):
        raise ValueError("bad mac")
    return payload
