"""SEC003 negative: key storage *inside* the TCB packages is the job.

This fixture resolves as ``repro.core.goodstore``, so the assignment
below is the Keystore doing exactly what §4.1 says it should.
"""


class FixtureKeystore:
    def __init__(self):
        self._session_keys = {}

    def install(self, session_id, key):
        self._session_keys[session_id] = key
