"""Seeded TNT002 violation: verification result thrown away."""


def deliver(kernel, session_id, message, queue):
    # The bool is never read: delivery proceeds whether or not the
    # attestation checks out.
    kernel.check_transferable(session_id, message)
    queue.append(message)


def open_sealed(key, mac, payload):
    hmac_verify(key, mac, payload)
    return payload
