"""Seeded TNT001 violation: wire bytes mutate trusted state unverified."""


class BadReceiver:
    """Advances the receive counter straight off the wire."""

    def pump(self):
        while True:
            packet = yield self.rx_queue.get()
            # No verify_event() between the receive queue and the
            # counter: a forged packet advances trusted state.
            self.counters.advance_recv(packet.counter)
