"""Seeded SEC002 violation: non-constant-time key comparison."""


def authenticate(store, session_id, provided):
    key = store.key_for(session_id)
    # `==` short-circuits on the first differing byte: timing oracle.
    return key == provided
