"""Seeded SEC001 violations: key material reaching egress sinks.

Three leaks, each through a different sink family, including one that
crosses a helper function so the interprocedural summaries are what
catches it — a single-statement pattern matcher would miss it.
"""


def fetch_key(store, session_id):
    return store.key_for(session_id)


def debug_dump(store, session_id):
    # Leak 1 (log): the key crosses fetch_key() before hitting print.
    print(fetch_key(store, session_id))


def report(sim, store, session_id):
    # Leak 2 (telemetry): raw key attached to a metrics event.
    key = store.key_for(session_id)
    emit(sim, "stack.session_key", key)


def send_raw(mac, data):
    mac.transmit(data)


def exfiltrate(store, mac, session_id):
    # Leak 3 (wire, via-chain): the sink is inside send_raw(), so the
    # finding must be reported here with the hop recorded.
    send_raw(mac, store.key_for(session_id))
