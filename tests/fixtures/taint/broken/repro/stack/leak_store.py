"""Seeded SEC003 violation: key escrow outside the TCB packages."""


class KeyCache:
    """An untrusted-layer object squirrelling away session keys."""

    def __init__(self):
        self._cached = {}

    def remember(self, store, session_id):
        # The copy outlives the call and silently widens the TCB.
        self._cached[session_id] = store.key_for(session_id)
