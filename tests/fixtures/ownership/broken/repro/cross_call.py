"""Seeded SHD003 violations: direct touches on state owned outside the
calling replica, reached through a shared root."""


class Tally:
    def __init__(self) -> None:
        self.finished = 0


class Grid:
    def __init__(self, names) -> None:
        self.faults = []
        self.tally = Tally()
        self.workers = {name: Worker(name, self) for name in names}


class Worker:
    def __init__(self, name, grid: "Grid") -> None:
        self.name = name
        self.grid = grid
        self.done = False

    def step(self, item) -> None:
        self.done = True

    def run(self, sim):
        while True:
            yield sim.timeout(1)
            grid = self.grid
            # Mutates the grid's fault list in place: line 31.
            grid.faults.append(self.name)
            # Calls another replica's method on live state: line 33.
            grid.workers["w0"].step(self.name)
            # Writes state owned by the grid's tally object: line 35.
            grid.tally.finished = 1
