"""Seeded SHD001 violations: replica-owned mutables escaping to
shared-rooted state outside any channel."""


class Collector:
    def __init__(self) -> None:
        self.seen = []

    def collect(self, log):
        self.seen.append(log)


class System:
    def __init__(self, names) -> None:
        self.collector = Collector()
        self.latest = None
        self.nodes = {name: Node(name, self) for name in names}


class Node:
    def __init__(self, name, system: "System") -> None:
        self.name = name
        self.system = system
        self.log = []  # replica-owned mutable

    def run(self, sim):
        while True:
            yield sim.timeout(1)
            self.log.append(self.name)
            # Hands a live reference to another domain: line 31.
            self.system.collector.collect(self.log)
            # Stores the owned log into shared state: line 33.
            self.system.latest = self.log
