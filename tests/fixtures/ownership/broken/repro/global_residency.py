"""Seeded SHD002 violation: a module-global mutable mutated and
resident in two replicas' process bodies."""

TALLIES: dict = {}  # line 4: every shard would fork a divergent copy


class Mesh:
    def __init__(self, names) -> None:
        self.peers = [Peer(name) for name in names]


class Peer:
    def __init__(self, name) -> None:
        self.name = name

    def run(self, sim):
        while True:
            yield sim.timeout(1)
            TALLIES[self.name] = TALLIES.get(self.name, 0) + 1

    def drain(self, sim):
        yield sim.timeout(2)
        TALLIES.pop(self.name, None)
