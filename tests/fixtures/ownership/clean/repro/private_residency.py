"""Clean twin of ``global_residency``: per-replica tallies live on the
replica object; module globals are read-only configuration."""

ROUTES = ("east", "west")
LIMITS = {"east": 4, "west": 4}  # mutable shape, but never mutated


class Mesh:
    def __init__(self, names) -> None:
        self.peers = [Peer(name) for name in names]


class Peer:
    def __init__(self, name) -> None:
        self.name = name
        self.tally = {}

    def run(self, sim):
        while True:
            yield sim.timeout(1)
            self.tally[self.name] = self.tally.get(self.name, 0) + 1
            if self.tally[self.name] >= LIMITS.get(self.name, 0):
                return
