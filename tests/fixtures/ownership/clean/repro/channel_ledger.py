"""Clean twin of ``escape_ledger``: the log crosses domains only as a
channel message or an explicit ``cross_shard`` handoff."""

from repro.sim.shard import cross_shard


class EmulatedNetwork:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.inboxes = {}

    def register(self, name):
        inbox = []
        self.inboxes[name] = inbox
        return inbox

    def send(self, dst, message) -> None:
        self.inboxes[dst].append(message)


class Auditor:
    def __init__(self) -> None:
        self.seen = []

    def collect(self, snapshot):
        self.seen.append(snapshot)


class System:
    def __init__(self, sim, names) -> None:
        self.network = EmulatedNetwork(sim)
        self.auditor = Auditor()
        self.nodes = {name: Node(name, self) for name in names}


class Node:
    def __init__(self, name, system: "System") -> None:
        self.name = name
        self.system = system
        self.log = []
        self.inbox = system.network.register(name)

    def run(self, sim):
        while True:
            yield sim.timeout(1)
            self.log.append(self.name)
            # A snapshot through the channel: sanctioned.
            self.system.network.send("auditor", tuple(self.log))
            # A live reference, but explicitly surrendered: sanctioned.
            self.system.auditor.collect(cross_shard(self.log))
