"""Clean twin of ``cross_call``: cross-replica work travels as channel
messages the owning replica applies to its own state."""


class EmulatedNetwork:
    def __init__(self, sim) -> None:
        self.sim = sim
        self.inboxes = {}

    def register(self, name):
        inbox = []
        self.inboxes[name] = inbox
        return inbox

    def send(self, dst, message) -> None:
        self.inboxes[dst].append(message)


class Grid:
    def __init__(self, sim, names) -> None:
        self.network = EmulatedNetwork(sim)
        self.workers = {name: Worker(name, self) for name in names}


class Worker:
    def __init__(self, name, grid: "Grid") -> None:
        self.name = name
        self.grid = grid
        self.inbox = grid.network.register(name)
        self.faults = []

    def run(self, sim):
        while True:
            item = yield sim.timeout(1)
            # Own state mutates freely; remote work goes as a message.
            self.faults.append(item)
            self.grid.network.send("w0", ("step", self.name))
