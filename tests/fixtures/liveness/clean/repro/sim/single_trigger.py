"""Clean LIV002 twin: exclusive arms, `.triggered` guard, per-iteration
events."""


class SingleTrigger:
    def complete_once(self, sim, ok):
        done = sim.event()
        if ok:
            done.succeed(1)
        else:
            done.fail(RuntimeError("rejected"))
        return done

    def late_path_guarded(self, sim):
        done = sim.event()
        done.succeed(1)
        if not done.triggered:
            done.fail(RuntimeError("expired"))
        return done

    def fresh_event_per_iteration(self, sim, batches):
        ticks = []
        for batch in batches:
            tick = sim.event()
            tick.succeed(batch)
            ticks.append(tick)
        return ticks

    def trigger_then_return(self, sim, ok):
        done = sim.event()
        if not ok:
            done.fail(RuntimeError("rejected"))
            return done
        done.succeed(1)
        return done
