"""Clean LIV001 twin: every hold releases in try/finally."""


class TidyWorker:
    def __init__(self, sim, lock):
        self.sim = sim
        self.lock = lock
        self.jobs = 0

    def run(self):
        yield self.lock.acquire()
        try:
            yield self.sim.timeout(1.0)
            self.jobs += 1
        finally:
            self.lock.release()

    def run_aliased(self):
        lock = self.lock
        yield lock.acquire()
        try:
            yield self.sim.timeout(1.0)
        finally:
            lock.release()
