"""Clean LIV003 twin: the event reaches code that completes it."""


def complete(event, value):
    event.succeed(value)


class HandedWait:
    def __init__(self, sim):
        self.sim = sim
        self._pending = {}

    def wait_for_handoff(self):
        done = self.sim.event()
        complete(done, 7)
        yield done

    def wait_registered(self, psn):
        done = self.sim.event()
        self._pending[psn] = done  # a response handler will complete it
        yield done
