"""Clean LIV004 twin: one global acquisition order, no cycle."""


class OrderedLocks:
    def __init__(self, sim, lock_a, lock_b):
        self.sim = sim
        self.lock_a = lock_a
        self.lock_b = lock_b

    def forward(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()
            try:
                yield self.sim.timeout(1.0)
            finally:
                self.lock_b.release()
        finally:
            self.lock_a.release()

    def also_forward(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()
            try:
                yield self.sim.timeout(2.0)
            finally:
                self.lock_b.release()
        finally:
            self.lock_a.release()
