"""Clean liveness corpus: the sanctioned twin of every broken shape.

try/finally-released holds, mutually exclusive or guarded triggers, an
event handed to the callee that completes it, a single global
acquisition order, and deadline-composed network waits — none of this
may produce a LIV finding.
"""
