"""Clean LIV005 twin: deadline-composed completion and receive loop."""


class BoundedEndpoint:
    def __init__(self, sim, rx):
        self.sim = sim
        self.rx = rx
        self._pending = {}

    def call(self, payload, timeout_us=100.0):
        done = self.sim.event()
        self._pending[payload.psn] = done

        def _expire():
            pending = self._pending.pop(payload.psn, None)
            if pending is not None and not pending.triggered:
                pending.fail(RuntimeError("no response"))

        self.sim.delayed_call(timeout_us, _expire)
        return done

    def recv_loop(self):
        while True:
            got = self.rx.get()
            frame = yield self.sim.any_of([got, self.sim.timeout(50.0)])
            if frame is None:
                self.rx.cancel_get(got)
                break
            self._pending.pop(frame, None)
