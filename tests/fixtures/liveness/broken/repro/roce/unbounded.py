"""LIV005 shapes: pending completion without a deadline, unbounded get."""


class UnboundedEndpoint:
    def __init__(self, sim, rx):
        self.sim = sim
        self.rx = rx
        self._pending = {}

    def call(self, payload):
        done = self.sim.event()  # line 11: no expiry composed
        self._pending[payload.psn] = done
        return done

    def recv_loop(self):
        while True:
            frame = yield self.rx.get()  # line 17: parks forever when quiet
            self._pending.pop(frame.psn, None)
