"""Seeded-broken liveness corpus: every LIV rule fires here.

Each module under this package stages exactly one lifecycle bug class;
the exact findings (rule, module, line) are enumerated in
``tests/test_liveness.py``.  ``repro/roce/`` exists because LIV005 is
scoped to the network-facing packages.
"""
