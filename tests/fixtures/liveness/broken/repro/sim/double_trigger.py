"""LIV002 shapes: sequential double trigger, loop outliving the event."""


class DoubleTrigger:
    def complete_twice(self, sim):
        done = sim.event()
        done.succeed(1)
        done.succeed(2)  # line 8: second unguarded trigger
        return done

    def retrigger_in_loop(self, sim, batches):
        tick = sim.event()
        for batch in batches:
            tick.succeed(batch)  # line 14: loop outlives the event
        return tick
