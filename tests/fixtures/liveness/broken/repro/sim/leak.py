"""LIV001 shapes: never-released acquire, release outside try/finally."""


class LeakyWorker:
    def __init__(self, sim, lock):
        self.sim = sim
        self.lock = lock
        self.jobs = 0

    def run(self):
        yield self.lock.acquire()  # line 11: never released
        yield self.sim.timeout(1.0)
        self.jobs += 1

    def run_unprotected(self):
        yield self.lock.acquire()  # line 16: held across a bare yield
        yield self.sim.timeout(1.0)
        self.lock.release()
