"""LIV003 shape: event yielded with no reachable trigger site."""


class ForgottenWait:
    def wait_forever(self, sim):
        done = sim.event()
        yield done  # line 7: nothing ever succeeds/fails `done`
        return None
