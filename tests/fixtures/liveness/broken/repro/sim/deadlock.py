"""LIV004 shape: AB-BA acquisition order across two processes."""


class TwoLocks:
    def __init__(self, sim, lock_a, lock_b):
        self.sim = sim
        self.lock_a = lock_a
        self.lock_b = lock_b

    def forward(self):
        yield self.lock_a.acquire()
        try:
            yield self.lock_b.acquire()  # line 13: holds a, waits on b
            try:
                yield self.sim.timeout(1.0)
            finally:
                self.lock_b.release()
        finally:
            self.lock_a.release()

    def backward(self):
        yield self.lock_b.acquire()
        try:
            yield self.lock_a.acquire()  # line 24: holds b, waits on a
            try:
                yield self.sim.timeout(1.0)
            finally:
                self.lock_a.release()
        finally:
            self.lock_b.release()
