"""Seeded-broken hot-path corpus: every PERF rule fires here.

``Simulator.step`` / ``Simulator._drain`` match the manifest's entry
patterns, so everything below is in the hot set.  The exact findings
(rule, line) are enumerated in ``tests/test_hotpath.py``.
"""

import hashlib


class EventRecord:
    """No __slots__, instantiated per step: the PERF002 shape."""

    def __init__(self, psn):
        self.psn = psn


class Simulator:
    def __init__(self):
        self.queue = [3, 2, 1]
        self.telemetry = None
        self.mac = None

    def step(self):
        labels = [str(item) for item in self.queue]
        banner = "queue:" + str(len(labels))
        callback = lambda event: None  # noqa: E731
        record = EventRecord(len(labels))
        emit(self, "sim.step", f"depth={len(self.queue)}")
        self._drain()
        return banner, callback, record

    def _drain(self):
        while self.queue:
            self.mac.port.transmit(self.queue[-1])
            self.mac.port.transmit(None)
            try:
                self.queue.pop()
            except IndexError:
                break
        return hashlib.sha256(b"drained").hexdigest()


def emit(sim, category, message):
    telemetry = sim.telemetry
    if telemetry is not None:
        telemetry.record(category, message)
