"""Clean twin of the hot-path corpus: the same kernel, allocation-free.

Every seeded PERF violation in ``broken/`` has its idiomatic fix here:
``__slots__`` on the per-event record, a gated f-string emit next to an
ungated-but-cheap counter bump, a hoisted bound method in the drain
loop, ``try``/``finally`` instead of ``try``/``except``, a yielding
``try``/``except`` (a protocol wait, exempt by design), and the raw
hash call confined to the sanctioned ``sha256`` helper.
"""

import hashlib


class EventRecord:
    __slots__ = ("psn",)

    def __init__(self, psn):
        self.psn = psn


class Simulator:
    def __init__(self):
        self.queue = [3, 2, 1]
        self.telemetry = None
        self.mac = None

    def step(self):
        record = EventRecord(len(self.queue))
        telemetry = self.telemetry
        if telemetry is not None:
            emit(self, "sim.step", f"depth={len(self.queue)}")
        count(self, "sim.steps")
        pump = self.wait_loop()
        self._drain()
        return record, pump

    def _drain(self):
        transmit = self.mac.port.transmit
        while self.queue:
            transmit(self.queue[-1])
            transmit(None)
            try:
                self.queue.pop()
            finally:
                pass
        return sha256(b"drained")

    def wait_loop(self):
        while True:
            try:
                yield self.queue
            except ValueError:
                break


def emit(sim, category, message):
    telemetry = sim.telemetry
    if telemetry is not None:
        telemetry.record(category, message)


def count(sim, category):
    telemetry = sim.telemetry
    if telemetry is not None:
        telemetry.bump(category)


def sha256(data):
    return hashlib.sha256(data).hexdigest()
