"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    PACKET_SIZE_SWEEP,
    Series,
    Table,
    format_ratio,
    kv_workload,
    packet_sweep,
    zipfian_keys,
)
from repro.bench.report import render_figure


def test_packet_sweep_doubles():
    assert packet_sweep(64, 1024) == [64, 128, 256, 512, 1024]
    assert PACKET_SIZE_SWEEP[0] == 64 and PACKET_SIZE_SWEEP[-1] == 16384


def test_packet_sweep_validation():
    with pytest.raises(ValueError):
        packet_sweep(0, 10)
    with pytest.raises(ValueError):
        packet_sweep(128, 64)


def test_zipfian_keys_skewed_and_deterministic():
    keys = zipfian_keys(2000, key_space=100, seed=7)
    assert zipfian_keys(2000, key_space=100, seed=7) == keys
    counts = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    # The hottest key dominates under skew 0.99.
    assert counts.get("key0", 0) > counts.get("key50", 0)


def test_zipfian_validation():
    with pytest.raises(ValueError):
        zipfian_keys(-1)
    with pytest.raises(ValueError):
        zipfian_keys(5, key_space=0)


def test_kv_workload_mix_and_sizes():
    requests = kv_workload(200, read_fraction=0.5, value_bytes=60, seed=1)
    assert len(requests) == 200
    ops = {r.op for r in requests}
    assert ops == {"put", "get"}
    puts = [r for r in requests if r.op == "put"]
    assert all(len(r.value) == 60 for r in puts)


def test_kv_workload_validation():
    with pytest.raises(ValueError):
        kv_workload(10, read_fraction=1.5)


def test_table_render_and_row_validation():
    table = Table("Demo", ["system", "ops"])
    table.add_row("tnic", 123)
    text = table.render()
    assert "Demo" in text and "tnic" in text and "123" in text
    with pytest.raises(ValueError):
        table.add_row("only-one-cell")


def test_series_and_figure_render():
    a = Series("TNIC")
    a.add(64, 15.5)
    a.add(128, 16.8)
    b = Series("RDMA-hw")
    b.add(64, 5.1)
    text = render_figure("Fig 9", "size", "latency (us)", [a, b])
    assert "TNIC" in text and "RDMA-hw" in text
    assert "15.50" in text
    assert "-" in text  # missing point for RDMA-hw at 128


def test_format_ratio():
    assert format_ratio(10, 2) == "5.0x"
    assert format_ratio(1, 0) == "n/a"
