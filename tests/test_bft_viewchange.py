"""Tests for the view-change extension (§8.5 sketch made concrete)."""

import pytest

from repro.systems.bft_viewchange import ViewChangeBftCounter


def test_honest_leader_no_view_change():
    system = ViewChangeBftCounter("tnic", f=1)
    metrics = system.run_workload(batches=5)
    assert metrics.committed == 5
    assert not system.aborted
    assert set(system.current_views().values()) == {0}
    # No replica saw a view change.
    assert all(r.view_changes_seen == 0 for r in system.replicas.values())


def test_silent_leader_triggers_failover_and_commits():
    """A crashed leader (r0) is replaced; the client still commits."""
    system = ViewChangeBftCounter("tnic", f=1, silent_replicas={"r0"})
    metrics = system.run_workload(batches=3)
    assert metrics.committed == 3
    assert not system.aborted
    views = system.current_views()
    # The live replicas advanced to view 1 (leader r1).
    assert views["r1"] >= 1 and views["r2"] >= 1
    assert system.leader_of(views["r1"]) != "r0"


def test_failover_latency_includes_watchdog():
    """Failed-over batches pay at least the watchdog timeout."""
    system = ViewChangeBftCounter(
        "tnic", f=1, silent_replicas={"r0"}, watchdog_us=500.0
    )
    metrics = system.run_workload(batches=1)
    assert metrics.committed == 1
    assert metrics.latencies_us[0] >= 500.0


def test_two_silent_followers_unavailable_beyond_f():
    """With f=1 and two crashed replicas (beyond tolerance), the system
    cannot gather a quorum: the client observes unavailability, never
    an incorrect commit."""
    system = ViewChangeBftCounter(
        "tnic", f=1, silent_replicas={"r1", "r2"}, watchdog_us=300.0
    )
    system.run_workload(batches=1, timeout_us=10_000.0)
    assert system.aborted
    assert system.metrics.committed == 0


def test_replicas_converge_on_counter_after_failover():
    system = ViewChangeBftCounter("tnic", f=1, silent_replicas={"r0"})
    system.run_workload(batches=4)
    live = [system.replicas[name] for name in ("r1", "r2")]
    assert {r.counter for r in live} == {4}


def test_f2_failover():
    system = ViewChangeBftCounter("tnic", f=2, silent_replicas={"r0"})
    metrics = system.run_workload(batches=2)
    assert metrics.committed == 2
    assert not system.aborted


def test_stale_view_poe_ignored():
    """A PoE carrying an old view number is dropped: 'previous
    connections will not block execution'."""
    system = ViewChangeBftCounter("tnic", f=1, silent_replicas={"r0"})
    system.run_workload(batches=1)
    r1 = system.replicas["r1"]
    # Simulate an old-view PoE arriving late: handled without effect.
    from repro.systems.bft_viewchange import ViewPoe

    counter_before = r1.counter
    stale = ViewPoe(view=0, sender="r0", attested=None)
    list(r1._on_poe(stale))  # generator runs to completion, no yield
    assert r1.counter == counter_before


def test_parameter_validation():
    with pytest.raises(ValueError):
        ViewChangeBftCounter(f=0)
