"""Tests for chain reconfiguration (Appendix C.4 system model)."""

import pytest

from repro.systems.chain import ChainBehaviour, KvRequest
from repro.systems.chain_reconfig import (
    ReconfigurableChain,
    ReconfigurationError,
)


def puts(n, prefix="k"):
    return [KvRequest("put", f"{prefix}{i}", f"v{i}") for i in range(n)]


def test_healthy_chain_never_reconfigures():
    service = ReconfigurableChain("tnic", chain_length=3)
    metrics = service.run_workload(puts(4))
    assert metrics.committed == 4
    assert service.epoch == 0
    assert service.exposed == []


def test_corrupt_middle_is_exposed_and_excluded():
    """A middle node forging outputs is exposed via the chained-PoE
    evidence; the service forms a new configuration without it and the
    workload completes."""
    service = ReconfigurableChain(
        "tnic", chain_length=4,
        behaviours={"mid0": ChainBehaviour(corrupt_output=True)},
    )
    metrics = service.run_workload(puts(3))
    assert metrics.committed == 3
    assert service.exposed == ["mid0"]
    assert service.epoch == 1
    assert "mid0" not in service.configurations[-1].members
    # Replicated state is intact across the reconfiguration.
    for store in service.stores().values():
        assert store == {f"k{i}": f"v{i}" for i in range(3)}


def test_state_transfer_preserves_committed_writes():
    service = ReconfigurableChain(
        "tnic", chain_length=4,
        behaviours={"mid1": ChainBehaviour(corrupt_output=True)},
    )
    # mid1 corrupts from the very first request; commit everything.
    metrics = service.run_workload(puts(5))
    assert metrics.committed == 5
    stores = service.stores()
    assert all(len(store) == 5 for store in stores.values())


def test_silent_node_exposed_by_progress_evidence():
    """A node that silently drops the chain message produces no PoE
    evidence; the service blames it via commit-progress comparison."""
    service = ReconfigurableChain(
        "tnic", chain_length=4,
        behaviours={"mid0": ChainBehaviour(drop_forward=True)},
        request_timeout_us=10_000.0,
    )
    metrics = service.run_workload(puts(2))
    assert metrics.committed == 2
    assert service.exposed == ["mid0"]


def test_too_many_exposures_exhaust_configurations():
    """When exclusions would leave fewer than two replicas, the service
    reports unavailability rather than an unsafe configuration."""
    service = ReconfigurableChain(
        "tnic", chain_length=3,
        behaviours={
            "mid0": ChainBehaviour(corrupt_output=True),
            "tail": ChainBehaviour(corrupt_output=True),
        },
    )
    with pytest.raises(ReconfigurationError):
        service.run_workload(puts(2))


def test_chain_length_minimum():
    with pytest.raises(ValueError):
        ReconfigurableChain(chain_length=2)


def test_configuration_records_track_epochs():
    service = ReconfigurableChain(
        "tnic", chain_length=4,
        behaviours={"mid0": ChainBehaviour(corrupt_output=True)},
    )
    service.run_workload(puts(1))
    assert [c.epoch for c in service.configurations] == [0, 1]
    assert service.configurations[0].members == ["head", "mid0", "mid1", "tail"]
    assert service.configurations[1].members == ["head", "mid1", "tail"]
