"""Tier-1 gate: the trusted-boundary import DAG holds over the real tree.

Any new import that lets ``repro.core`` / ``repro.crypto`` / the
``repro.roce`` datapath reach into the untrusted world fails this test
with the exact file:line edge, mirroring the paper's minimal-TCB
argument (Table 4): the trusted NIC depends on nothing above it.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    BOUNDARY_MANIFEST,
    TRUSTED_PACKAGES,
    check_boundaries,
    collect_sources,
    default_package_root,
    import_graph,
)


@pytest.fixture(scope="module")
def sources():
    return collect_sources([default_package_root()])


@pytest.mark.lint
def test_manifest_covers_every_trusted_package():
    assert set(TRUSTED_PACKAGES) <= set(BOUNDARY_MANIFEST)
    # The manifest is a DAG over constrained packages: everything a
    # constrained package may import is itself constrained, so trust
    # cannot leak transitively through an unconstrained layer.
    for allowed in BOUNDARY_MANIFEST.values():
        assert allowed <= set(BOUNDARY_MANIFEST)


@pytest.mark.lint
def test_trusted_packages_exist_in_tree(sources):
    modules = {src.module for src in sources}
    for package in BOUNDARY_MANIFEST:
        assert any(m == package or m.startswith(package + ".") for m in modules), (
            f"manifest names {package} but no such module exists"
        )


@pytest.mark.lint
def test_no_trusted_boundary_violations(sources):
    violations = check_boundaries(sources)
    assert violations == [], "\n".join(v.render() for v in violations)


@pytest.mark.lint
def test_untrusted_world_never_reached_transitively(sources):
    """Closure check: from any trusted module, follow runtime imports —
    no path may reach a repro package outside the boundary manifest."""
    graph = import_graph(sources)
    constrained = set(BOUNDARY_MANIFEST)

    def top(module: str) -> str:
        return ".".join(module.split(".")[:2])

    for start, edges in graph.items():
        if top(start) not in constrained:
            continue
        stack = [module for module, _ in edges]
        seen = set()
        while stack:
            module = stack.pop()
            if module in seen or not module.startswith("repro"):
                continue
            seen.add(module)
            package = top(module)
            if package != "repro":
                assert package in constrained, (
                    f"{start} transitively reaches untrusted {module}"
                )
            stack.extend(m for m, _ in graph.get(module, []))
