"""The zero-cost-when-off contract of the instrumentation layer.

The fast path never pays for observability it is not using: with no
tracer attached, ``Tracer.record`` is never invoked and no expensive
trace *arguments* (``Packet.describe()``, f-strings) are built; with no
telemetry hub attached, the hub is never invoked and ``span_begin``
hands back the shared :data:`NULL_SPAN` singleton.  A final check keeps
the static-analysis rules honest about the layering: the observability
(OBS001) and TCB-boundary (BND001) rules must stay clean over the real
tree — the gating must not be achieved by smuggling imports.
"""

import pytest

from repro.analysis import analyze_paths
from repro.api import Cluster, auth_send
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.sim.instrument import NULL_SPAN, count, span_begin
from repro.sim.trace import Tracer, tracing


def _run_auth_round(cluster: Cluster) -> None:
    conn, _ = cluster.connect("a", "b")
    cluster.run(auth_send(conn, b"gate-test"))
    cluster.run()


@pytest.fixture
def spies(monkeypatch):
    calls = {"record": 0, "describe": 0}
    real_record = Tracer.record
    real_describe = Packet.describe

    def record_spy(self, *args, **kwargs):
        calls["record"] += 1
        return real_record(self, *args, **kwargs)

    def describe_spy(self):
        calls["describe"] += 1
        return real_describe(self)

    monkeypatch.setattr(Tracer, "record", record_spy)
    monkeypatch.setattr(Packet, "describe", describe_spy)
    return calls


def test_no_trace_work_when_tracer_detached(spies):
    cluster = Cluster(["a", "b"])
    assert cluster.sim.tracer is None
    _run_auth_round(cluster)
    # Not merely "no records buffered": the record call and the message
    # construction never happened at all.
    assert spies["record"] == 0
    assert spies["describe"] == 0


def test_trace_work_happens_when_tracer_attached(spies):
    cluster = Cluster(["a", "b"])
    cluster.sim.tracer = Tracer()
    _run_auth_round(cluster)
    assert spies["record"] > 0
    assert spies["describe"] > 0
    assert len(cluster.sim.tracer) > 0


def test_tracing_gate_reflects_attachment():
    sim = Simulator()
    assert tracing(sim) is False
    sim.tracer = Tracer()
    assert tracing(sim) is True


def test_span_begin_returns_null_span_singleton_when_detached():
    sim = Simulator()
    span = span_begin(sim, "stage", node="n1")
    assert span is NULL_SPAN
    # The singleton absorbs the whole span surface without allocating.
    assert span.child("nested") is NULL_SPAN
    span.annotate(extra=1)
    span.end(status="ok")
    assert not span


def test_hub_not_invoked_when_telemetry_detached(monkeypatch):
    from repro.telemetry import Telemetry

    invoked = []
    for name in ("count", "gauge_set", "observe", "span_begin"):
        real = getattr(Telemetry, name)

        def spy(self, *args, __real=real, __name=name, **kwargs):
            invoked.append(__name)
            return __real(self, *args, **kwargs)

        monkeypatch.setattr(Telemetry, name, spy)

    cluster = Cluster(["a", "b"])
    assert cluster.sim.telemetry is None
    _run_auth_round(cluster)
    count(cluster.sim, "extra.counter")
    assert invoked == []


def test_obs001_and_bnd001_stay_clean_on_real_tree():
    findings = analyze_paths()
    flagged = [f for f in findings if f.rule in ("OBS001", "BND001")]
    assert flagged == [], [f.message for f in flagged]
