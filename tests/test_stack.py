"""Unit tests for the TNIC network stack (§5)."""

import pytest

from repro.core import TnicDevice
from repro.net import ArpServer
from repro.sim import Simulator
from repro.stack import (
    HugePageArea,
    IbvMemory,
    MappedRegsPage,
    MemoryError_,
    TnicDriver,
    TnicOsLibrary,
)
from repro.stack.driver import StaticConfig
from repro.stack.memory import HUGE_PAGE_BYTES
from repro.stack.regs import PAGE_SIZE, RegField


# ---------------------------------------------------------------------------
# Mapped REGs pages
# ---------------------------------------------------------------------------

def test_regs_read_write_roundtrip():
    regs = MappedRegsPage(0)
    regs.write_u64(RegField.CTRL_LENGTH, 4096)
    assert regs.read_u64(RegField.CTRL_LENGTH) == 4096
    assert regs.pseudo_device_path == "/dev/fpga0"


def test_regs_doorbell_triggers_device_handler():
    regs = MappedRegsPage(1)
    rings = []
    regs.on_doorbell(lambda: rings.append(regs.staged_request()))
    regs.write_u64(RegField.CTRL_OPCODE, 2)
    regs.write_u64(RegField.CTRL_LENGTH, 128)
    regs.write_u64(RegField.CTRL_DOORBELL, 1)
    assert regs.doorbell_rings == 1
    assert rings[0]["opcode"] == 2
    assert rings[0]["length"] == 128


def test_regs_bounds_and_alignment():
    regs = MappedRegsPage(0)
    with pytest.raises(ValueError):
        regs.write_u64(PAGE_SIZE, 0)
    with pytest.raises(ValueError):
        regs.write_u64(0x3, 0)
    with pytest.raises(ValueError):
        regs.write_u64(RegField.CTRL_OPCODE, 2**64)


def test_regs_status_accumulates():
    regs = MappedRegsPage(0)
    regs.post_status(completions=2)
    regs.post_status(completions=3, errors=1)
    assert regs.read_u64(RegField.STATUS_COMPLETIONS) == 5
    assert regs.read_u64(RegField.STATUS_ERRORS) == 1


# ---------------------------------------------------------------------------
# ibv memory
# ---------------------------------------------------------------------------

def test_hugepage_allocation_is_page_aligned():
    area = HugePageArea()
    region = area.allocate(100)
    assert region.size == HUGE_PAGE_BYTES
    assert area.allocated_bytes == HUGE_PAGE_BYTES
    big = area.allocate(HUGE_PAGE_BYTES + 1)
    assert big.size == 2 * HUGE_PAGE_BYTES
    assert big.base >= region.base + region.size


def test_allocation_rejects_nonpositive_size():
    with pytest.raises(MemoryError_):
        HugePageArea().allocate(0)


def test_memory_read_write_roundtrip():
    region = HugePageArea().allocate(1024)
    region.write(region.base + 10, b"hello")
    assert region.read(region.base + 10, 5) == b"hello"


def test_memory_bounds_checked():
    region = HugePageArea().allocate(1024)
    with pytest.raises(MemoryError_):
        region.read(region.base - 1, 4)
    with pytest.raises(MemoryError_):
        region.write(region.base + region.size - 2, b"xxxx")
    assert not region.contains(region.base - 1)
    assert region.contains(region.base, region.size)


def test_dma_requires_registration():
    region = HugePageArea().allocate(1024)
    with pytest.raises(MemoryError_):
        region.dma_write(region.base, b"x")
    region.register()
    region.dma_write(region.base, b"x")
    assert region.dma_read(region.base, 1) == b"x"


def test_remote_access_gated_by_rkey():
    area = HugePageArea()
    region = area.allocate(1024)
    other = area.allocate(1024)
    region.register()
    region.remote_write(region.rkey, region.base, b"ok")
    with pytest.raises(MemoryError_, match="rkey"):
        region.remote_write(other.rkey, region.base, b"no")
    assert region.remote_read(region.rkey, region.base, 2) == b"ok"


# ---------------------------------------------------------------------------
# Driver and OS library
# ---------------------------------------------------------------------------

def make_device(sim):
    return TnicDevice(sim, 1, "10.0.0.1", "02:00:00:00:00:01", ArpServer())


def test_driver_initialises_and_maps_device():
    sim = Simulator()
    driver = TnicDriver(sim)
    device = make_device(sim)
    regs = driver.initialise(
        device, StaticConfig(mac_address="02:00:00:00:00:01", ip="10.0.0.1")
    )
    assert regs.read_u64(RegField.STATUS_READY) == 1
    assert regs.read_u64(RegField.CONFIG_IP) == (10 << 24) | 1
    assert driver.mapping_for(0) is regs


def test_driver_rejects_mismatched_ip():
    sim = Simulator()
    driver = TnicDriver(sim)
    device = make_device(sim)
    with pytest.raises(ValueError):
        driver.initialise(
            device, StaticConfig(mac_address="02:00:00:00:00:01", ip="10.9.9.9")
        )


def test_static_config_validation():
    with pytest.raises(ValueError):
        StaticConfig(mac_address="", ip="10.0.0.1")
    with pytest.raises(ValueError):
        StaticConfig(mac_address="m", ip="10.0.0.1", qsfp_port=2)


def test_driver_unknown_mapping():
    driver = TnicDriver(Simulator())
    with pytest.raises(KeyError):
        driver.mapping_for(3)


def test_os_library_one_process_per_device():
    sim = Simulator()
    library = TnicOsLibrary(sim)
    regs = MappedRegsPage(0)
    p1 = library.open_device(regs)
    p2 = library.open_device(regs)
    assert p1 is p2
    assert len(library) == 1
    assert library.process_for(0) is p1
    with pytest.raises(KeyError):
        library.process_for(9)


def test_tnic_process_lock_serialises_reg_access():
    sim = Simulator()
    library = TnicOsLibrary(sim)
    process = library.open_device(MappedRegsPage(0))
    order = []

    def user(name):
        yield process.exclusive_regs()
        order.append((name, "in"))
        yield sim.timeout(5.0)
        order.append((name, "out"))
        process.release_regs()

    sim.process(user("a"))
    sim.process(user("b"))
    sim.run()
    assert order == [("a", "in"), ("a", "out"), ("b", "in"), ("b", "out")]
    assert process.requests_scheduled == 2
