"""Tests for the TNIC Attested Append-Only Memory (Appendix C.2)."""

import pytest

from repro.sim import Simulator
from repro.sim.latency import HOST_MEMORY_LOOKUP_US
from repro.systems.a2m import A2M, A2MError, MANIFEST
from repro.tee import make_provider

KEY = b"a2m-key-0123456789abcdef01234567"
SESSION = 1


def make_a2m(provider_name="tnic", storage="untrusted", **kwargs):
    sim = Simulator()
    provider = make_provider(provider_name, sim, 1, **kwargs)
    provider.install_session(SESSION, KEY)
    return sim, A2M(provider, SESSION, storage=storage)


def run(sim, event):
    return sim.run(event)


def test_append_assigns_monotonic_sequence_numbers():
    sim, a2m = make_a2m()
    entries = [run(sim, a2m.append("log", f"e{i}".encode())) for i in range(5)]
    assert [e.sequence for e in entries] == [0, 1, 2, 3, 4]
    assert a2m.bounds("log") == (0, 5)


def test_append_binds_context_to_attestation():
    sim, a2m = make_a2m()
    entry = run(sim, a2m.append("log", b"ctx"))
    assert entry.alpha.payload == b"ctx"
    assert entry.alpha.counter == 0
    assert len(entry.authenticator()) == 32


def test_cumulative_digest_chains():
    sim, a2m = make_a2m()
    e0 = run(sim, a2m.append("log", b"a"))
    e1 = run(sim, a2m.append("log", b"b"))
    assert e0.cumulative_digest != e1.cumulative_digest
    # Chain property: e1's digest covers e0's digest.
    from repro.crypto.hashing import sha256
    assert e1.cumulative_digest == sha256(b"b", 1, e0.cumulative_digest)


def test_lookup_returns_entry_without_verification():
    sim, a2m = make_a2m()
    run(sim, a2m.append("log", b"x"))
    entry = run(sim, a2m.lookup("log", 0))
    assert entry.context == b"x"


def test_lookup_missing_entry_raises():
    _, a2m = make_a2m()
    with pytest.raises(A2MError, match="no entry"):
        a2m.lookup("log", 3)


def test_verify_lookup_accepts_genuine_entry():
    sim, a2m = make_a2m()
    run(sim, a2m.append("log", b"x"))
    entry = run(sim, a2m.lookup("log", 0))
    head, tail = a2m.bounds("log")
    verified = run(sim, a2m.verify_lookup("log", entry, head, tail))
    assert verified is entry


def test_verify_lookup_rejects_forged_entry():
    from dataclasses import replace

    sim, a2m = make_a2m()
    run(sim, a2m.append("log", b"x"))
    entry = run(sim, a2m.lookup("log", 0))
    forged = replace(entry, context=b"forged",
                     alpha=replace(entry.alpha, payload=b"forged"))
    head, tail = a2m.bounds("log")
    with pytest.raises(A2MError, match="attestation failed"):
        run(sim, a2m.verify_lookup("log", forged, head, tail))


def test_truncate_forgets_entries_and_records_manifest():
    sim, a2m = make_a2m()
    for i in range(5):
        run(sim, a2m.append("log", f"e{i}".encode()))
    run(sim, a2m.truncate("log", head=3, nonce=b"nonce-1"))
    head, tail = a2m.bounds("log")
    assert head == 3
    with pytest.raises(A2MError):
        a2m.lookup("log", 1)  # forgotten
    # TRNC marker appended to the log, plus one MANIFEST record.
    _, manifest_tail = a2m.bounds(MANIFEST)
    assert manifest_tail == 1
    marker = run(sim, a2m.lookup("log", 5))
    assert marker.context.startswith(b"TRNC|log|nonce-1")


def test_truncated_entry_fails_verify_lookup():
    """'A non-Byzantine client can never successfully verify a
    forgotten log entry.'"""
    sim, a2m = make_a2m()
    for i in range(4):
        run(sim, a2m.append("log", f"e{i}".encode()))
    stale = run(sim, a2m.lookup("log", 0))
    run(sim, a2m.truncate("log", head=2, nonce=b"z"))
    head, tail = a2m.bounds("log")
    with pytest.raises(A2MError, match="outside live window"):
        a2m.verify_lookup("log", stale, head, tail)


def test_manifest_cannot_be_truncated():
    _, a2m = make_a2m()
    with pytest.raises(A2MError, match="MANIFEST"):
        a2m.truncate(MANIFEST, 0, b"z")


def test_truncate_beyond_tail_rejected():
    _, a2m = make_a2m()
    with pytest.raises(A2MError, match="beyond tail"):
        a2m.truncate("log", 5, b"z")


def test_invalid_storage_mode():
    sim = Simulator()
    provider = make_provider("tnic", sim, 1)
    provider.install_session(SESSION, KEY)
    with pytest.raises(ValueError):
        A2M(provider, SESSION, storage="weird")


def test_untrusted_lookup_is_host_memory_speed():
    _, a2m = make_a2m("tnic", storage="untrusted")
    assert a2m.lookup_cost_us("log", 12345) == HOST_MEMORY_LOOKUP_US


def test_enclave_lookup_pays_epc_paging_on_large_logs():
    """Table 3's 66x SGX-lib lookup slowdown: sequential cold scans
    over a >EPC log are dominated by paging."""
    _, a2m = make_a2m("sgx-lib", storage="enclave")
    # Scan far beyond the EPC: every page is a miss.
    miss_costs = [
        a2m.lookup_cost_us("log", i)
        for i in range(0, 2_000_000, 41)  # stride beyond one page
    ]
    mean_cost = sum(miss_costs) / len(miss_costs)
    assert mean_cost > 10 * HOST_MEMORY_LOOKUP_US


def test_append_latency_ordering_matches_table3():
    """Table 3 append latency: SSL-lib < SGX-lib < TNIC < AMD-sev."""
    means = {}
    for name, storage in [
        ("ssl-lib", "untrusted"),
        ("sgx-lib", "enclave"),
        ("tnic", "untrusted"),
        ("amd-sev", "untrusted"),
    ]:
        sim, a2m = make_a2m(name, storage=storage)
        start = sim.now
        for i in range(50):
            run(sim, a2m.append("log", b"x" * 64))
        means[name] = (sim.now - start) / 50
    assert means["ssl-lib"] < means["sgx-lib"] < means["tnic"] < means["amd-sev"]
    # SSL-lib append ~1.26us (Table 3).
    assert means["ssl-lib"] == pytest.approx(1.26, rel=0.25)


def test_reconstruct_bounds_without_truncation():
    sim, a2m = make_a2m()
    for i in range(3):
        run(sim, a2m.append("log", f"e{i}".encode()))
    head, tail = run(sim, a2m.reconstruct_bounds("log"))
    assert (head, tail) == (0, 3)


def test_reconstruct_bounds_finds_latest_truncation():
    sim, a2m = make_a2m()
    for i in range(8):
        run(sim, a2m.append("log", f"e{i}".encode()))
    run(sim, a2m.truncate("log", head=2, nonce=b"n1"))
    run(sim, a2m.truncate("log", head=5, nonce=b"n2"))
    head, tail = run(sim, a2m.reconstruct_bounds("log"))
    assert head == 5
    assert tail == a2m.bounds("log")[1]


def test_reconstruct_bounds_is_per_log():
    sim, a2m = make_a2m()
    for i in range(4):
        run(sim, a2m.append("alpha", f"a{i}".encode()))
        run(sim, a2m.append("beta", f"b{i}".encode()))
    run(sim, a2m.truncate("alpha", head=3, nonce=b"z"))
    head_alpha, _ = run(sim, a2m.reconstruct_bounds("alpha"))
    head_beta, _ = run(sim, a2m.reconstruct_bounds("beta"))
    assert head_alpha == 3
    assert head_beta == 0


def test_reconstruct_bounds_detects_forged_manifest():
    sim, a2m = make_a2m()
    for i in range(4):
        run(sim, a2m.append("log", f"e{i}".encode()))
    run(sim, a2m.truncate("log", head=2, nonce=b"n"))
    # Byzantine host rewrites the MANIFEST record in untrusted memory.
    from dataclasses import replace

    from repro.systems.a2m import MANIFEST

    manifest_log = a2m._log(MANIFEST)
    seq = max(manifest_log.entries)
    entry = manifest_log.entries[seq]
    forged_ctx = entry.context.replace(b"|2|", b"|0|")
    manifest_log.entries[seq] = replace(
        entry, context=forged_ctx,
        alpha=replace(entry.alpha, payload=forged_ctx),
    )
    with pytest.raises(A2MError, match="failed verification"):
        run(sim, a2m.reconstruct_bounds("log"))
