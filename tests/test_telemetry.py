"""Tests for the deterministic observability layer (repro.telemetry)."""

import json
from pathlib import Path

import pytest

from repro.cli import _instrumented_workload, main
from repro.sim.clock import Simulator
from repro.sim.instrument import (
    NULL_SPAN,
    count,
    flight_trigger,
    gauge_set,
    observe,
    span_begin,
)
from repro.telemetry import Telemetry
from repro.telemetry.metrics import (
    BYTE_BUCKET_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import SpanTracker


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
def test_counter_monotonic():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_histogram_quantiles_clamped_to_observed_range():
    hist = Histogram("h", bounds=(10.0, 20.0, 40.0))
    for value in (12.0, 14.0, 16.0, 18.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.quantile(0.0) == 12.0  # clamped to observed min
    assert hist.quantile(1.0) == 18.0  # clamped to observed max
    assert 12.0 <= hist.quantile(0.5) <= 18.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_overflow_bucket():
    hist = Histogram("h", bounds=(1.0, 2.0))
    hist.observe(100.0)
    assert hist.bucket_counts[-1] == 1
    assert hist.quantile(0.99) == 100.0
    summary = hist.to_dict()
    assert summary["buckets"] == {"le_inf": 1}


def test_registry_label_order_is_canonical():
    registry = MetricsRegistry()
    a = registry.counter("pkts", node="a", qp=1)
    b = registry.counter("pkts", qp=1, node="a")
    assert a is b  # kwarg order must not create a second series


def test_registry_rejects_kind_conflicts():
    registry = MetricsRegistry()
    registry.counter("roce.tx")
    with pytest.raises(ValueError):
        registry.histogram("roce.tx")


def test_byte_suffix_selects_byte_buckets():
    sim = Simulator()
    hub = Telemetry.attach(sim)
    hub.observe("dma.size_bytes", 4096)
    series = hub.registry.histogram("dma.size_bytes")
    assert series.bounds == BYTE_BUCKET_BOUNDS


# ----------------------------------------------------------------------
# Hook layer: detached hooks are no-ops
# ----------------------------------------------------------------------
def test_hooks_are_noops_without_hub():
    sim = Simulator()  # no Telemetry.attach
    count(sim, "x")
    gauge_set(sim, "x2", 1.0)
    observe(sim, "y", 1.0)
    flight_trigger(sim, "z", reason="unit-test")
    span = span_begin(sim, "stage")
    assert span is NULL_SPAN
    assert not span
    span.child("nested").end()
    span.end(status="ok")  # all silently inert


def test_hooks_dispatch_to_attached_hub():
    sim = Simulator()
    hub = Telemetry.attach(sim)
    count(sim, "x", 2, node="n1")
    gauge_set(sim, "depth", 7)
    observe(sim, "lat", 5.0)
    snapshot = hub.registry.snapshot()
    assert snapshot["counters"]["x{node=n1}"] == 2.0
    assert snapshot["gauges"]["depth"] == 7
    assert snapshot["histograms"]["lat"]["count"] == 1


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def _advance(sim, delta):
    sim.run(sim.now + delta)


def test_span_nesting_and_tree():
    sim = Simulator()
    tracker = SpanTracker(sim, MetricsRegistry())
    root = tracker.begin("tnic.tx", device=1)
    _advance(sim, 4.0)
    stage = root.child("attest.hmac")
    _advance(sim, 6.0)
    stage.end()
    root.end(status="ok")
    assert [s.name for s in tracker.finished] == ["attest.hmac", "tnic.tx"]
    child, parent = tracker.finished
    assert child.parent_id == parent.span_id
    assert child.duration_us == 6.0
    assert parent.duration_us == 10.0
    tree = tracker.tree()
    lines = tree.splitlines()
    assert lines[0].startswith("tnic.tx")
    assert lines[1].startswith("  attest.hmac")


def test_span_end_is_idempotent_and_feeds_histogram():
    sim = Simulator()
    registry = MetricsRegistry()
    tracker = SpanTracker(sim, registry)
    span = tracker.begin("stage")
    _advance(sim, 3.0)
    span.end()
    span.end()  # second close is a no-op
    assert registry.histogram("stage").count == 1


def test_span_eviction_accounting():
    sim = Simulator()
    tracker = SpanTracker(sim, MetricsRegistry(), capacity=2)
    for i in range(5):
        tracker.begin(f"s{i}").end()
    assert len(tracker.finished) == 2
    assert tracker.evicted == 3


# ----------------------------------------------------------------------
# End-to-end determinism: the headline guarantee
# ----------------------------------------------------------------------
def test_two_seeded_runs_are_byte_identical():
    _, hub_a = _instrumented_workload(ops=8, seed=3, tamper=False)
    _, hub_b = _instrumented_workload(ops=8, seed=3, tamper=False)
    assert hub_a.render_json() == hub_b.render_json()
    assert hub_a.spans.tree() == hub_b.spans.tree()
    assert hub_a.render_prometheus() == hub_b.render_prometheus()


def test_workload_covers_fig06_stages():
    _, hub = _instrumented_workload(ops=6, seed=0, tamper=False)
    document = hub.document()
    histograms = document["metrics"]["histograms"]
    for stage in ("tnic.tx", "tnic.dma", "attest.hmac", "roce.tx",
                  "tnic.post", "roce.rx_verify"):
        assert stage in histograms, stage
        assert histograms[stage]["count"] >= 6
        assert histograms[stage]["p50"] <= histograms[stage]["p99"]
    # Stage spans nest under the root: the root must dominate them.
    assert histograms["tnic.tx"]["mean"] >= histograms["attest.hmac"]["mean"]


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
def test_flight_recorder_captures_rejection(tmp_path):
    cluster, hub = _instrumented_workload(ops=4, seed=1, tamper=True)
    assert len(hub.recorder) >= 1
    events = [snap["event"] for snap in hub.recorder.snapshots]
    assert "attest.reject" in events
    first = hub.recorder.snapshots[0]
    assert first["context"]["reason"] == "mac"
    assert first["trace_tail"], "trace tail must capture the lead-up"
    assert "counters" in first["metrics"]
    # Despite the tamper, go-back-N redelivered every message.
    delivered = hub.registry.counter("roce.rx_delivered", node="10.0.0.2")
    assert delivered.value == 4
    # The black box round-trips through JSON.
    path = tmp_path / "blackbox.json"
    hub.recorder.dump(path)
    payload = json.loads(Path(path).read_text())
    assert payload["snapshots"][0]["event"] == "attest.reject"


def test_flight_recorder_state_providers_and_bounds():
    sim = Simulator()
    hub = Telemetry.attach(sim, max_snapshots=2)
    hub.recorder.add_state_provider("fixed", lambda: {"k": 1})
    for i in range(4):
        flight_trigger(sim, "invariant", index=i)
    assert len(hub.recorder) == 2
    assert hub.recorder.overflowed == 2
    assert hub.recorder.snapshots[0]["state"]["fixed"] == {"k": 1}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_prometheus_rendering_shape():
    _, hub = _instrumented_workload(ops=4, seed=0, tamper=False)
    text = hub.render_prometheus()
    assert "# TYPE tnic_attest_hmac histogram" in text
    assert text.splitlines()[-1].startswith("tnic_clock_us ")
    # Cumulative bucket counts must be monotonic up to _count.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("tnic_attest_hmac_bucket")
    ]
    assert counts == sorted(counts)
    assert counts[-1] == 4


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
def test_metrics_command_json_has_percentiles(capsys):
    assert main(["metrics", "--json", "--ops", "6"]) == 0
    document = json.loads(capsys.readouterr().out)
    for stage in ("attest.hmac", "roce.tx"):
        summary = document["metrics"]["histograms"][stage]
        assert summary["count"] == 6
        assert summary["p50"] > 0
        assert summary["p99"] >= summary["p50"]


def test_metrics_command_is_deterministic(capsys):
    assert main(["metrics", "--json", "--ops", "5"]) == 0
    first = capsys.readouterr().out
    assert main(["metrics", "--json", "--ops", "5"]) == 0
    assert capsys.readouterr().out == first


def test_metrics_command_prom_and_text(capsys):
    assert main(["metrics", "--prom", "--ops", "3"]) == 0
    assert "# TYPE tnic_roce_tx histogram" in capsys.readouterr().out
    assert main(["metrics", "--ops", "3", "--spans"]) == 0
    out = capsys.readouterr().out
    assert "-- histograms (us) --" in out
    assert "tnic.tx" in out


def test_trace_command_category_filter(capsys):
    assert main(["trace", "--ops", "3", "--category", "roce."]) == 0
    out = capsys.readouterr().out
    body, summary = out.rstrip().rsplit("\n", 1)
    assert summary.startswith("trace: emitted=")
    for line in body.splitlines():
        assert "roce." in line
    assert "delivered" in body


def test_trace_command_tamper_shows_rejection(capsys):
    assert main(["trace", "--ops", "2", "--tamper",
                 "--category", "attest."]) == 0
    assert "attest.reject" in capsys.readouterr().out


# ----------------------------------------------------------------------
# OBS001: the observability layer itself must be clock-free
# ----------------------------------------------------------------------
def test_obs001_flags_time_import_in_telemetry(tmp_path):
    from repro.analysis.observability import TelemetryWallClockRule
    from repro.analysis.walker import parse_file

    path = tmp_path / "repro" / "telemetry" / "bad.py"
    path.parent.mkdir(parents=True)
    for package in (tmp_path / "repro", path.parent):
        (package / "__init__.py").write_text("")
    path.write_text("import time\n\nSTAMP = time.time()\n")
    findings = list(TelemetryWallClockRule().check(parse_file(path)))
    assert {f.rule for f in findings} == {"OBS001"}
    assert len(findings) == 2  # the import and the call


def test_obs001_ignores_other_packages(tmp_path):
    from repro.analysis.observability import TelemetryWallClockRule
    from repro.analysis.walker import parse_file

    path = tmp_path / "repro" / "bench" / "timed.py"
    path.parent.mkdir(parents=True)
    for package in (tmp_path / "repro", path.parent):
        (package / "__init__.py").write_text("")
    path.write_text("import time\n")
    assert list(TelemetryWallClockRule().check(parse_file(path))) == []


def test_obs001_flags_bare_wall_clock_reference(tmp_path):
    from repro.analysis.observability import TelemetryWallClockRule
    from repro.analysis.walker import parse_file

    path = tmp_path / "repro" / "telemetry" / "sneaky.py"
    path.parent.mkdir(parents=True)
    for package in (tmp_path / "repro", path.parent):
        (package / "__init__.py").write_text("")
    # Storing the clock as a callable smuggles nondeterminism past a
    # call-only check; the reference itself must be flagged.
    path.write_text("import time\n\nCLOCK = time.perf_counter_ns\n")
    findings = list(TelemetryWallClockRule().check(parse_file(path)))
    assert len(findings) == 2  # the import and the bare reference
    assert any("reference to" in f.message for f in findings)


def test_obs001_does_not_double_report_calls(tmp_path):
    from repro.analysis.observability import TelemetryWallClockRule
    from repro.analysis.walker import parse_file

    path = tmp_path / "repro" / "telemetry" / "called.py"
    path.parent.mkdir(parents=True)
    for package in (tmp_path / "repro", path.parent):
        (package / "__init__.py").write_text("")
    # A call site is one finding (the Call branch), not two: the
    # Attribute node that is the call's func must not re-report.
    path.write_text("import time\n\nSTAMP = time.monotonic()\n")
    findings = list(TelemetryWallClockRule().check(parse_file(path)))
    assert len(findings) == 2  # the import and the call — nothing more


def test_obs001_scopes_include_instrument_layer(tmp_path):
    from repro.analysis.observability import TelemetryWallClockRule
    from repro.analysis.walker import parse_file

    path = tmp_path / "repro" / "sim" / "instrument.py"
    path.parent.mkdir(parents=True)
    for package in (tmp_path / "repro", path.parent):
        (package / "__init__.py").write_text("")
    path.write_text("CLOCK = __import__('time').perf_counter_ns\n")
    # dotted_name can't see through __import__, but a plain reference
    # in the tracepoint layer is flagged just as in repro.telemetry.
    path.write_text("import time\n\nCLOCK = time.perf_counter_ns\n")
    findings = list(TelemetryWallClockRule().check(parse_file(path)))
    assert len(findings) == 2


def test_obs001_profiler_waivers_keep_real_tree_clean():
    from repro.analysis import analyze_paths

    findings = analyze_paths([Path("src/repro/telemetry")])
    assert [f for f in findings if f.rule == "OBS001"] == []


# ----------------------------------------------------------------------
# Prometheus label escaping
# ----------------------------------------------------------------------
def test_prometheus_label_escaping():
    from repro.telemetry.exporters import _prom_escape

    assert _prom_escape('plain') == 'plain'
    assert _prom_escape('say "hi"') == 'say \\"hi\\"'
    assert _prom_escape('back\\slash') == 'back\\\\slash'
    assert _prom_escape('line\nbreak') == 'line\\nbreak'
    # Backslash first: escaping the quote must not double-escape.
    assert _prom_escape('\\"') == '\\\\\\"'


def test_prometheus_rendering_escapes_hostile_labels():
    sim = Simulator()
    hub = Telemetry.attach(sim)
    hub.count("attack.surface", node='evil"name\nwith\\stuff')
    text = hub.render_prometheus()
    line = next(l for l in text.splitlines()
                if l.startswith("tnic_attack_surface"))
    assert line == (
        'tnic_attack_surface{node="evil\\"name\\nwith\\\\stuff"} 1'
    )
    # The exposition stays one-metric-per-line: no raw newline leaked.
    assert 'evil"name' not in text
