"""Tests for the §6.2 consistency property (two-receiver model)."""

import pytest

from repro.verification.consistency import (
    ConsistencyModel,
    check_consistency,
    prefix_related,
)


def test_prefix_related_cases():
    assert prefix_related((), ())
    assert prefix_related(("a",), ())
    assert prefix_related(("a",), ("a", "b"))
    assert prefix_related(("a", "b"), ("a", "b"))
    assert not prefix_related(("a",), ("b",))
    assert not prefix_related(("a", "x"), ("a", "y"))


def test_consistency_holds_with_counters():
    """TNIC counters force both receivers onto prefix-related
    histories, even against an equivocating sender."""
    model = ConsistencyModel(max_sends=3, equivocating=True)
    holds, counterexample, explored = check_consistency(model, max_depth=7)
    assert holds, counterexample
    assert explored > 50


def test_consistency_holds_for_honest_sender_without_counters():
    """Sanity: with an honest (non-equivocating) sender even the
    counterless variant cannot diverge on *content* — only ordering
    anomalies appear, which still keep payload sets prefix-comparable
    only when delivery is in order; equivocation is the essential
    ingredient, so this documents the attack surface precisely."""
    model = ConsistencyModel(
        max_sends=1, equivocating=False, counter_check=False
    )
    holds, _, _ = check_consistency(model, max_depth=5)
    assert holds


def test_consistency_violated_without_counter_check():
    """Removing the continuity check lets an equivocating sender split
    the receivers' histories — the checker exhibits the divergence."""
    model = ConsistencyModel(
        max_sends=2, equivocating=True, counter_check=False
    )
    holds, counterexample, _ = check_consistency(model, max_depth=6)
    assert not holds
    state, labels = counterexample
    assert not prefix_related(state.accepted_r1, state.accepted_r2)
    assert any(label.startswith("send") for label in labels)


def test_receivers_converge_on_full_delivery():
    """In the verified model there exists a run where both receivers
    accept the complete identical sequence."""
    from repro.verification.checker import explore

    model = ConsistencyModel(max_sends=2, equivocating=True)
    reached, _ = explore(model, max_depth=8)
    assert any(
        len(state.accepted_r1) == 2 and state.accepted_r1 == state.accepted_r2
        for state, _ in reached
    )
