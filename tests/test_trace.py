"""Tests for the structured tracing subsystem."""

import pytest

from repro.api import Cluster, auth_send
from repro.net.fabric import NetworkFault
from repro.sim.trace import Tracer, TraceRecord, emit


def test_record_render():
    record = TraceRecord(12.5, "roce.tx", "send psn=0", {"node": "10.0.0.1"})
    text = record.render()
    assert "12.50us" in text and "roce.tx" in text and "node=10.0.0.1" in text


def test_tracer_capacity_bounded():
    tracer = Tracer(capacity=3)
    for i in range(10):
        tracer.record(float(i), "cat", f"m{i}")
    assert len(tracer) == 3
    assert tracer.records()[0].message == "m7"
    assert tracer.emitted == 10


def test_tracer_eviction_accounted_separately_from_drops():
    tracer = Tracer(capacity=3)
    for i in range(10):
        tracer.record(float(i), "cat", f"m{i}")
    # 7 records were buffered then pushed out; none were filter-refused.
    assert tracer.evicted == 7
    assert tracer.dropped == 0


def test_tracer_filter_drops_do_not_count_as_evictions():
    tracer = Tracer(capacity=2, categories=("roce.",))
    for i in range(5):
        tracer.record(float(i), "attest.generate", f"m{i}")
    tracer.record(5.0, "roce.tx", "kept")
    assert tracer.dropped == 5
    assert tracer.evicted == 0
    assert len(tracer) == 1


def test_tracer_category_filter():
    tracer = Tracer(categories=("roce.",))
    tracer.record(0.0, "roce.tx", "yes")
    tracer.record(0.0, "attest.generate", "no")
    assert len(tracer) == 1
    assert tracer.dropped == 1


def test_tracer_validation():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_emit_noop_without_tracer():
    # Simulator.__init__ guarantees the attribute; emit's off path is a
    # plain attribute load, so a sim-alike needs tracer = None.
    class FakeSim:
        now = 0.0
        _now = 0.0
        tracer = None

    emit(FakeSim(), "cat", "message")  # must not raise


def test_cluster_traffic_is_traceable():
    cluster = Cluster(["a", "b"])
    tracer = Tracer()
    cluster.sim.tracer = tracer
    conn_a, _ = cluster.connect("a", "b")
    cluster.run(auth_send(conn_a, b"traced"))
    cluster.run()
    tx = tracer.records("roce.tx")
    rx = tracer.records("roce.rx")
    attest = tracer.records("attest.generate")
    assert tx and rx and attest
    assert any("send" in r.message for r in tx)
    rendered = tracer.render("roce.")
    assert "roce.tx" in rendered


def test_rejections_traced_under_attack():
    state = {"hit": False}

    def tamper_once(pkt):
        if pkt.payload and pkt.trailer is not None and not state["hit"]:
            state["hit"] = True
            return pkt.with_payload(b"\x00" * len(pkt.payload))
        return None

    cluster = Cluster(["a", "b"], fault=NetworkFault(tamper=tamper_once))
    tracer = Tracer()
    cluster.sim.tracer = tracer
    conn_a, _ = cluster.connect("a", "b")
    cluster.run(auth_send(conn_a, b"target"))
    cluster.run()
    assert tracer.records("attest.reject")
    assert tracer.records("roce.reject")


def test_clear():
    tracer = Tracer()
    tracer.record(0.0, "x", "y")
    tracer.clear()
    assert len(tracer) == 0
