"""Unit tests for the attestation kernel (Algorithm 1)."""

import pytest

from repro.core import (
    AttestationKernel,
    AttestedMessage,
    ContinuityError,
    MacMismatchError,
    UnknownSessionError,
)
from repro.core.counters import CounterStore
from repro.core.keystore import Keystore, KeystoreError
from repro.sim import Simulator

KEY = b"k" * 32


def make_pair(session=1):
    sender = AttestationKernel(device_id=10)
    receiver = AttestationKernel(device_id=20)
    sender.install_session(session, KEY)
    receiver.install_session(session, KEY)
    return sender, receiver


def test_attest_then_verify_roundtrip():
    sender, receiver = make_pair()
    msg = sender.attest(1, b"payload")
    assert receiver.verify(1, msg) == b"payload"


def test_counters_monotonic_per_message():
    sender, _ = make_pair()
    counters = [sender.attest(1, b"m").counter for _ in range(5)]
    assert counters == [0, 1, 2, 3, 4]


def test_verify_rejects_tampered_payload():
    sender, receiver = make_pair()
    msg = sender.attest(1, b"payload")
    forged = AttestedMessage(
        payload=b"evil", alpha=msg.alpha, session_id=msg.session_id,
        device_id=msg.device_id, counter=msg.counter,
    )
    with pytest.raises(MacMismatchError):
        receiver.verify(1, forged)
    # Failed verification must not advance the receive counter.
    assert receiver.counters.expected_recv(1) == 0
    assert receiver.verify(1, msg) == b"payload"


def test_verify_rejects_forged_alpha():
    sender, receiver = make_pair()
    msg = sender.attest(1, b"payload")
    forged = AttestedMessage(
        payload=msg.payload, alpha=b"\x00" * 32, session_id=msg.session_id,
        device_id=msg.device_id, counter=msg.counter,
    )
    with pytest.raises(MacMismatchError):
        receiver.verify(1, forged)


def test_verify_rejects_replay():
    """Non-equivocation lemma (iii): the same message is never accepted twice."""
    sender, receiver = make_pair()
    msg = sender.attest(1, b"payload")
    receiver.verify(1, msg)
    with pytest.raises(ContinuityError):
        receiver.verify(1, msg)


def test_verify_rejects_skipped_message():
    """Non-equivocation lemma (i): nothing sent earlier may be skipped."""
    sender, receiver = make_pair()
    sender.attest(1, b"first")
    second = sender.attest(1, b"second")
    with pytest.raises(ContinuityError) as info:
        receiver.verify(1, second)
    assert info.value.expected == 0
    assert info.value.received == 1


def test_verify_rejects_reordering():
    """Non-equivocation lemma (ii): no later message accepted before earlier."""
    sender, receiver = make_pair()
    first = sender.attest(1, b"first")
    second = sender.attest(1, b"second")
    with pytest.raises(ContinuityError):
        receiver.verify(1, second)
    assert receiver.verify(1, first) == b"first"
    assert receiver.verify(1, second) == b"second"


def test_equivocation_attempt_gets_distinct_counters():
    """A Byzantine sender cannot bind two different messages to one counter."""
    sender, receiver = make_pair()
    a = sender.attest(1, b"to-alice")
    b = sender.attest(1, b"to-bob")
    assert a.counter != b.counter
    # Forging b with a's counter breaks the MAC.
    forged = AttestedMessage(
        payload=b.payload, alpha=b.alpha, session_id=b.session_id,
        device_id=b.device_id, counter=a.counter,
    )
    with pytest.raises(MacMismatchError):
        receiver.verify(1, forged)


def test_transferable_authentication_third_party():
    """A forwarded attested message verifies at any key-holding party."""
    sender, receiver = make_pair()
    third = AttestationKernel(device_id=30)
    third.install_session(1, KEY)
    msg = sender.attest(1, b"payload")
    # Receiver consumes it in order...
    receiver.verify(1, msg)
    # ...and a third party can still evaluate the transferable check.
    assert third.check_transferable(1, msg)
    forged = AttestedMessage(
        payload=b"evil", alpha=msg.alpha, session_id=msg.session_id,
        device_id=msg.device_id, counter=msg.counter,
    )
    assert not third.check_transferable(1, forged)


def test_unknown_session_raises():
    kernel = AttestationKernel(device_id=1)
    with pytest.raises(UnknownSessionError):
        kernel.attest(9, b"x")
    with pytest.raises(UnknownSessionError):
        kernel.check_transferable(9, AttestedMessage(b"", b"", 9, 1, 0))


def test_sessions_are_independent():
    kernel = AttestationKernel(device_id=1)
    kernel.install_session(1, KEY)
    kernel.install_session(2, b"q" * 32)
    m1 = kernel.attest(1, b"a")
    m2 = kernel.attest(2, b"a")
    assert m1.counter == 0 and m2.counter == 0
    assert m1.alpha != m2.alpha


def test_wire_bytes_accounts_for_trailer():
    sender, _ = make_pair()
    msg = sender.attest(1, b"x" * 100)
    assert msg.wire_bytes == 100 + 64 + 16


def test_keystore_rejects_key_rewrite_and_short_keys():
    store = Keystore(device_id=1)
    store.install(1, KEY)
    with pytest.raises(KeystoreError):
        store.install(1, b"z" * 32)
    with pytest.raises(KeystoreError):
        store.install(2, b"short")
    assert store.sessions() == [1]
    assert len(store) == 1


def test_keystore_unknown_session():
    store = Keystore(device_id=1)
    with pytest.raises(KeystoreError):
        store.key_for(5)
    assert not store.has_session(5)


def test_counter_store_send_recv_independent():
    counters = CounterStore()
    assert counters.next_send(1) == 0
    assert counters.next_send(1) == 1
    assert counters.expected_recv(1) == 0
    counters.advance_recv(1)
    assert counters.expected_recv(1) == 1
    assert counters.peek_send(1) == 2
    assert counters.snapshot() == {1: (2, 1)}


def test_counter_store_rejects_negative_session():
    counters = CounterStore()
    with pytest.raises(ValueError):
        counters.next_send(-1)


def test_pipelined_attest_verify_charges_time():
    sim = Simulator()
    sender = AttestationKernel(10, sim)
    receiver = AttestationKernel(20, sim)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)
    result = {}

    def run():
        msg = yield sender.attest_event(1, b"p" * 64)
        t_attest = sim.now
        payload = yield receiver.verify_event(1, msg)
        result["payload"] = payload
        result["t_attest"] = t_attest
        result["t_total"] = sim.now

    sim.run(sim.process(run()))
    assert result["payload"] == b"p" * 64
    assert 0 < result["t_attest"] < result["t_total"]


def test_pipelined_verify_failure_propagates():
    sim = Simulator()
    sender = AttestationKernel(10, sim)
    receiver = AttestationKernel(20, sim)
    sender.install_session(1, KEY)
    receiver.install_session(1, KEY)

    def run():
        msg = yield sender.attest_event(1, b"data")
        forged = AttestedMessage(
            payload=b"evil", alpha=msg.alpha, session_id=1,
            device_id=msg.device_id, counter=msg.counter,
        )
        try:
            yield receiver.verify_event(1, forged)
        except MacMismatchError:
            return "rejected"
        return "accepted"

    assert sim.run(sim.process(run())) == "rejected"


def test_pipelined_requires_simulator():
    kernel = AttestationKernel(1)
    kernel.install_session(1, KEY)
    with pytest.raises(RuntimeError):
        kernel.attest_event(1, b"x")
