"""Tests for RoCE MTU segmentation and reassembly (SEND First/Middle/Last)."""

import pytest

from repro.core import TnicDevice
from repro.net import ArpServer, Link, NetworkFault
from repro.roce import QueuePair
from repro.sim import DeterministicRng, Simulator

KEY = b"segmentation-key-0123456789abcd!"
SESSION = 4


def build_pair(fault=None, trusted=True, mtu=1024, rng_seed=0):
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp, trusted=trusted)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp, trusted=trusted)
    a.roce.path_mtu = mtu
    b.roce.path_mtu = mtu
    Link(sim, a.mac, b.mac, fault=fault, rng=DeterministicRng(rng_seed, "l"))
    if trusted:
        a.install_session(SESSION, KEY)
        b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    return sim, a, b


def test_large_message_segmented_and_reassembled():
    sim, a, b = build_pair(mtu=1024)
    payload = bytes(range(256)) * 20  # 5120 B -> 5 segments + 1 partial? 5x1024
    completion = a.send(1, payload)
    sim.run(completion)
    sim.run()
    items = b.drain(2)
    assert len(items) == 1
    assert items[0]["payload"] == payload
    # Sender consumed one PSN per segment.
    assert a.roce.tables.get(1).next_send_psn == 5


def test_exact_mtu_not_segmented():
    sim, a, b = build_pair(mtu=1024)
    completion = a.send(1, b"x" * 1024)
    sim.run(completion)
    sim.run()
    assert a.roce.tables.get(1).next_send_psn == 1
    assert b.drain(2)[0]["payload"] == b"x" * 1024


def test_attestation_covers_whole_reassembled_message():
    sim, a, b = build_pair(mtu=512)
    payload = b"A" * 2000
    sim.run(a.send(1, payload))
    sim.run()
    item = b.drain(2)[0]
    assert item["message"].payload == payload
    assert item["message"].counter == 0


def test_mixed_sizes_preserve_fifo():
    sim, a, b = build_pair(mtu=512)
    payloads = [b"s" * 64, b"L" * 2000, b"m" * 512, b"X" * 1500]
    for payload in payloads:
        sim.run(a.send(1, payload))
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_tampered_middle_segment_recovered():
    """Corrupting one middle segment invalidates the whole message;
    go-back-N re-supplies it and the genuine content is delivered."""
    state = {"count": 0}

    def tamper_second_data_packet(pkt):
        if pkt.payload and pkt.meta.get("segments"):
            state["count"] += 1
            if state["count"] == 2:  # the first MIDDLE segment
                return pkt.with_payload(b"\xff" * len(pkt.payload))
        return None

    fault = NetworkFault(tamper=tamper_second_data_packet)
    sim, a, b = build_pair(fault=fault, mtu=512)
    payload = b"B" * 1600
    completion = a.send(1, payload)
    sim.run(completion)
    sim.run()
    items = b.drain(2)
    assert [i["payload"] for i in items] == [payload]
    assert b.roce.verification_failures >= 1


def test_segmented_transfer_survives_drops():
    fault = NetworkFault(drop_probability=0.25)
    sim, a, b = build_pair(fault=fault, mtu=512, rng_seed=17)
    payloads = [b"D" * 1800, b"E" * 900, b"F" * 3000]
    for payload in payloads:
        sim.run(a.send(1, payload))
    sim.run()
    assert [i["payload"] for i in b.drain(2)] == payloads


def test_untrusted_segmentation():
    sim, a, b = build_pair(trusted=False, mtu=256)
    payload = b"u" * 1000
    sim.run(a.send(1, payload))
    sim.run()
    item = b.drain(2)[0]
    assert item["payload"] == payload
    assert item["message"] is None


def test_mtu_validation():
    from repro.roce.transport import RoceKernel
    from repro.net.mac import EthernetMac

    sim = Simulator()
    with pytest.raises(ValueError, match="MTU"):
        RoceKernel(sim, EthernetMac(sim, "m"), ArpServer(), "10.0.0.1",
                   path_mtu=100)


def test_bidirectional_segmented_traffic():
    sim, a, b = build_pair(mtu=512)
    ca = a.send(1, b"p" * 1500)
    cb = b.send(2, b"q" * 2500)
    sim.run(ca)
    sim.run(cb)
    sim.run()
    assert b.drain(2)[0]["payload"] == b"p" * 1500
    assert a.drain(1)[0]["payload"] == b"q" * 2500
