"""Property-based tests of the reliable transport under hostile networks.

The invariant under test is the one the whole paper rests on: between
two correct nodes, the trusted transport delivers every message exactly
once, in FIFO order, with genuine content — for *any* combination of
drops, duplication, reordering, replay and seeds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TnicDevice
from repro.net import ArpServer, Link, NetworkFault
from repro.roce import QueuePair
from repro.sim import DeterministicRng, Simulator

KEY = b"transport-prop-key-0123456789ab!"
SESSION = 6


def run_exchange(payloads, fault, seed, mtu=4096):
    sim = Simulator()
    arp = ArpServer()
    a = TnicDevice(sim, 1, "10.0.0.1", "mac-a", arp)
    b = TnicDevice(sim, 2, "10.0.0.2", "mac-b", arp)
    a.roce.path_mtu = mtu
    b.roce.path_mtu = mtu
    a.roce.retransmit_timeout_us = 80.0
    Link(sim, a.mac, b.mac, fault=fault, rng=DeterministicRng(seed, "pl"))
    a.install_session(SESSION, KEY)
    b.install_session(SESSION, KEY)
    qp_a = QueuePair(qp_number=1, session_id=SESSION,
                     local_ip="10.0.0.1", remote_ip="10.0.0.2")
    qp_b = QueuePair(qp_number=2, session_id=SESSION,
                     local_ip="10.0.0.2", remote_ip="10.0.0.1")
    a.create_qp(qp_a)
    b.create_qp(qp_b)
    a.connect_qp(1, 2)
    b.connect_qp(2, 1)
    for payload in payloads:
        sim.run(a.send(1, payload))
    sim.run()
    return [item["payload"] for item in b.drain(2)]


@given(
    st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8),
    st.floats(min_value=0.0, max_value=0.35),
    st.floats(min_value=0.0, max_value=0.35),
    st.floats(min_value=0.0, max_value=0.35),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=25, deadline=None)
def test_exactly_once_fifo_under_random_faults(
    payloads, drop, duplicate, reorder, seed
):
    fault = NetworkFault(
        drop_probability=drop,
        duplicate_probability=duplicate,
        reorder_probability=reorder,
        replay_probability=0.2,
    )
    delivered = run_exchange(payloads, fault, seed)
    assert delivered == payloads


@given(
    st.lists(st.integers(min_value=1, max_value=3000), min_size=1, max_size=4),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=20, deadline=None)
def test_segmented_messages_survive_loss(sizes, seed):
    payloads = [bytes([i % 256]) * size for i, size in enumerate(sizes)]
    fault = NetworkFault(drop_probability=0.2)
    delivered = run_exchange(payloads, fault, seed, mtu=512)
    assert delivered == payloads


@given(st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_periodic_tampering_never_corrupts_delivery(seed):
    state = {"n": 0}

    def tamper_every_third(pkt):
        if pkt.payload and pkt.trailer is not None:
            state["n"] += 1
            if state["n"] % 3 == 0:
                return pkt.with_payload(bytes([pkt.payload[0] ^ 1])
                                        + pkt.payload[1:])
        return None

    payloads = [f"msg-{i}".encode() for i in range(6)]
    fault = NetworkFault(tamper=tamper_every_third)
    delivered = run_exchange(payloads, fault, seed)
    assert delivered == payloads
