"""End-to-end integration: bootstrapping → session keys → trusted I/O.

Ties the layers together the way a deployment would: the Manufacturer
and IP vendor provision each TNIC device (Figure 3), the *delivered*
session secrets are burnt into the device keystores, and the runtime
stack then performs trusted sends whose attestations verify — while a
device provisioned with different secrets cannot participate.
"""

import pytest

from repro.api import auth_send
from repro.api.connection import Cluster, ibv_sync
from repro.api.ops import recv
from repro.attest_protocol import IpVendor, Manufacturer, provision_device
from repro.core.attestation import UnknownSessionError

SESSION_ID = 42


def provision_cluster(session_key_label: str, names=("alice", "bob")):
    """Provision one device per node and install delivered secrets."""
    manufacturer = Manufacturer()
    vendor = IpVendor()
    from repro.crypto.hashing import sha256

    sessions = {SESSION_ID: sha256("deployment", session_key_label)}
    cluster = Cluster(list(names))
    for name in names:
        result = provision_device(
            manufacturer, vendor, f"dev-{name}", sessions
        )
        # The controller received the secrets over the attested TLS
        # channel; burn them into the runtime device's keystore.
        for session_id, key in result.device.received_secrets.items():
            cluster[name].device.install_session(session_id, key)
    return cluster


def connect_with_session(cluster, a="alice", b="bob"):
    node_a, node_b = cluster[a], cluster[b]
    conn_a = node_a.ibv_qp_conn(node_b.ip, SESSION_ID)
    conn_b = node_b.ibv_qp_conn(node_a.ip, SESSION_ID)
    region_a = node_a.alloc_mem(4096)
    region_b = node_b.alloc_mem(4096)
    node_a.init_lqueue(region_a)
    node_b.init_lqueue(region_b)
    conn_a.tx_region = node_a.alloc_mem(4096)
    conn_b.tx_region = node_b.alloc_mem(4096)
    node_a.init_lqueue(conn_a.tx_region)
    node_b.init_lqueue(conn_b.tx_region)
    ibv_sync(conn_a, conn_b, region_a, region_b)
    return conn_a, conn_b


def test_provisioned_devices_exchange_verified_messages():
    cluster = provision_cluster("prod-2026")
    conn_a, conn_b = connect_with_session(cluster)
    cluster.run(auth_send(conn_a, b"provisioned hello"))
    cluster.run()
    item = recv(conn_b)
    assert item["payload"] == b"provisioned hello"
    assert item["message"].session_id == SESSION_ID


def test_unprovisioned_device_cannot_send_on_session():
    cluster = Cluster(["alice", "bob"])  # no provisioning performed
    conn_a = cluster["alice"].ibv_qp_conn(cluster["bob"].ip, SESSION_ID)
    cluster["bob"].ibv_qp_conn(cluster["alice"].ip, SESSION_ID)
    cluster["alice"].device.connect_qp(conn_a.qp_number, 9999)
    conn_a.tx_region = cluster["alice"].alloc_mem(4096)
    cluster["alice"].init_lqueue(conn_a.tx_region)
    conn_a.synced = True
    completion = auth_send(conn_a, b"no key")
    with pytest.raises(UnknownSessionError):
        cluster.run(completion)


def test_differently_provisioned_deployments_do_not_interoperate():
    """Two deployments provisioned with different root secrets share a
    session id but not the key: cross-traffic never verifies."""
    cluster = provision_cluster("deployment-A", names=("alice", "bob"))
    # Re-provision bob's device under a different deployment secret by
    # overwriting the cluster's second node with fresh keys is not
    # possible (keystore is write-once), so build a second cluster and
    # splice an attested message across.
    other = provision_cluster("deployment-B", names=("carol", "dave"))
    conn_a, _ = connect_with_session(cluster)
    conn_c, conn_d = connect_with_session(other, a="carol", b="dave")

    def attest_on_a():
        return cluster["alice"].device.local_attest(SESSION_ID, b"cross")

    message = cluster.run(attest_on_a())

    def verify_on_d():
        return other["dave"].device.local_verify(SESSION_ID, message)

    assert other.run(verify_on_d()) is False
