"""Tests for PeerReview accountability (Appendix C.5, Algorithm 5)."""

import pytest

from repro.systems.peer_review import (
    PeerReviewBehaviour,
    PeerReviewSystem,
    TamperEvidentLog,
    reference_execute,
)


def test_happy_path_streams_all_chunks():
    system = PeerReviewSystem("tnic", audit=True)
    metrics = system.run_workload(chunks=5)
    assert metrics.committed == 5
    assert system.detected_faults() == []
    assert system.witness.audits_performed == 5


def test_audit_disabled_performs_no_audits():
    system = PeerReviewSystem("tnic", audit=False)
    system.run_workload(chunks=3)
    assert system.witness.audits_performed == 0


def test_audit_adds_bounded_overhead():
    """'the audit protocol itself consumes about 25% (17us) of the
    overall latency, leading to 1.33x performance slowdown'."""
    with_audit = PeerReviewSystem("tnic", audit=True).run_workload(8)
    without = PeerReviewSystem("tnic", audit=False).run_workload(8)
    slowdown = without.throughput_ops / with_audit.throughput_ops
    assert 1.05 < slowdown < 1.8
    extra = with_audit.mean_latency_us - without.mean_latency_us
    assert extra == pytest.approx(17.0, abs=4.0)


def test_deviating_execution_detected_by_witness():
    """A child that computes a wrong result is exposed when the witness
    replays the source's log against the reference implementation."""
    system = PeerReviewSystem(
        "tnic", audit=True,
        behaviour=PeerReviewBehaviour(wrong_execution=True),
    )
    system.run_workload(chunks=2)
    faults = system.detected_faults()
    assert any("diverges from reference" in fault for fault in faults)


def test_tampered_log_breaks_hash_chain():
    system = PeerReviewSystem(
        "tnic", audit=True,
        behaviour=PeerReviewBehaviour(tamper_log=True),
    )
    system.run_workload(chunks=3)
    faults = system.detected_faults()
    assert any("hash chain broken" in fault for fault in faults)


def test_no_false_positives_without_audit():
    system = PeerReviewSystem(
        "tnic", audit=False,
        behaviour=PeerReviewBehaviour(wrong_execution=True),
    )
    system.run_workload(chunks=2)
    # Faults happen but go undetected without the audit protocol —
    # accountability is detection, not prevention.
    assert system.detected_faults() == []


def test_tnic_outperforms_tee_versions():
    """Fig 12: TNIC 3-5x better throughput than SGX / AMD-sev."""
    results = {
        name: PeerReviewSystem(name, audit=True, seed=4).run_workload(6)
        for name in ("tnic", "sgx", "amd-sev", "ssl-lib")
    }
    tnic = results["tnic"].throughput_ops
    assert tnic > 1.5 * results["sgx"].throughput_ops
    assert tnic > 1.3 * results["amd-sev"].throughput_ops
    assert results["ssl-lib"].throughput_ops > tnic


def test_children_count_validated():
    with pytest.raises(ValueError):
        PeerReviewSystem(children=0)


# ---------------------------------------------------------------------------
# Tamper-evident log unit tests
# ---------------------------------------------------------------------------

def test_log_chain_intact_after_appends():
    log = TamperEvidentLog()
    for i in range(5):
        log.append("send", f"m{i}".encode())
    assert log.verify_chain() is None
    assert [r.index for r in log.records] == list(range(5))


def test_log_tamper_detected_at_exact_index():
    log = TamperEvidentLog()
    for i in range(5):
        log.append("send", f"m{i}".encode())
    log.tamper(2, b"rewritten")
    assert log.verify_chain() == 2


def test_log_since_slices():
    log = TamperEvidentLog()
    for i in range(4):
        log.append("recv", f"m{i}".encode())
    assert len(log.since(2)) == 2


def test_reference_execute_deterministic():
    assert reference_execute("abc") == reference_execute("abc")
    assert reference_execute("abc") != reference_execute("abd")


def test_child_witnesses_audit_child_logs():
    system = PeerReviewSystem("tnic", audit=True, audit_children=True)
    system.run_workload(chunks=3)
    assert system.detected_faults() == []
    for witness in system.child_witnesses.values():
        assert witness.audits_performed == 3


def test_child_witness_catches_deviating_child():
    """With the full witness set, the deviating child is caught by ITS
    OWN witness replaying the child's log (not only via the source)."""
    system = PeerReviewSystem(
        "tnic", audit=True, audit_children=True,
        behaviour=PeerReviewBehaviour(wrong_execution=True),
    )
    system.run_workload(chunks=2)
    faults = system.detected_faults()
    assert any(fault.startswith("child0:") for fault in faults)


def test_witness_role_validated():
    from repro.systems.peer_review import Witness

    system = PeerReviewSystem("tnic", audit=False)
    with pytest.raises(ValueError, match="role"):
        Witness(system, role="bystander")


def test_child_audits_add_proportional_overhead():
    single = PeerReviewSystem("tnic", audit=True).run_workload(5)
    full = PeerReviewSystem(
        "tnic", audit=True, audit_children=True
    ).run_workload(5)
    extra = full.mean_latency_us - single.mean_latency_us
    # Two extra audits of ~17us each per chunk.
    assert 20.0 <= extra <= 50.0


def test_non_responsive_child_exposed():
    """'expose non-responsive nodes': a silent child is reported by the
    source's witness machinery after the ack timeout."""
    system = PeerReviewSystem(
        "tnic", audit=False,
        behaviour=PeerReviewBehaviour(silent_child=True),
        ack_timeout_us=2_000.0,
    )
    metrics = system.run_workload(chunks=2)
    assert metrics.committed == 2  # the stream makes progress regardless
    faults = system.detected_faults()
    assert any("non-responsive" in fault and "child0" in fault
               for fault in faults)
    # The healthy child is never accused.
    assert not any("child1" in fault for fault in faults)
