"""Tests for bootstrapping + remote attestation (§4.3, Figure 3)."""

import pytest

from repro.attest_protocol import (
    IpVendor,
    Manufacturer,
    ProtocolError,
    SecureChannel,
    TlsError,
    TnicControllerDevice,
    provision_device,
)
from repro.attest_protocol.actors import ControllerBinary
from repro.attest_protocol.tls import SealedRecord
from repro.crypto.hashing import sha256
from repro.crypto.rsa import generate_keypair
from repro.sim.rng import DeterministicRng

SESSIONS = {1: b"a" * 32, 2: b"b" * 32}


def test_happy_path_provisions_bitstream_and_secrets():
    manufacturer = Manufacturer()
    vendor = IpVendor()
    result = provision_device(manufacturer, vendor, "dev-001", SESSIONS)
    assert result.bitstream == vendor.bitstream
    assert result.session_secrets == SESSIONS
    assert result.device.received_bitstream == vendor.bitstream
    assert vendor.provisioned["dev-001"] == result.controller_public_key


def test_counterfeit_device_rejected():
    """A device whose HW_key was not burnt by the manufacturer cannot
    produce a valid measurement certificate."""
    manufacturer = Manufacturer()
    vendor = IpVendor()
    manufacturer.construct_device("dev-001")
    binary = vendor.publish_binary()
    fake = TnicControllerDevice("dev-001", sha256("attacker-key"), binary)
    with pytest.raises(ProtocolError, match="not rooted in HW_key"):
        provision_device(manufacturer, vendor, "dev-001", SESSIONS, device=fake)


def test_unknown_binary_measurement_rejected():
    """A genuine device running an unexpected (malicious) binary fails
    the measurement check."""
    manufacturer = Manufacturer()
    vendor = IpVendor()
    hw_key = manufacturer.construct_device("dev-001")
    rogue_binary = ControllerBinary(
        code=b"evil-controller", vendor_public_key=vendor.keys.public
    )
    rogue = TnicControllerDevice("dev-001", hw_key, rogue_binary)
    with pytest.raises(ProtocolError, match="measurement is unknown"):
        provision_device(manufacturer, vendor, "dev-001", SESSIONS, device=rogue)


def test_wrong_vendor_key_embedded_refuses_channel():
    """The controller only talks to the vendor embedded in its binary."""
    manufacturer = Manufacturer()
    vendor = IpVendor()
    imposter = IpVendor("imposter")
    hw_key = manufacturer.construct_device("dev-001")
    # Binary embeds the imposter's key but carries vendor's code, and the
    # vendor is tricked into accepting its measurement.
    binary = ControllerBinary(code=b"controller-v1",
                              vendor_public_key=imposter.keys.public)
    vendor._expected_measurements.add(binary.measurement())
    device = TnicControllerDevice("dev-001", hw_key, binary)
    with pytest.raises(ProtocolError, match="embedded in the binary"):
        provision_device(manufacturer, vendor, "dev-001", SESSIONS, device=device)


def test_stale_nonce_rejected():
    manufacturer = Manufacturer()
    vendor = IpVendor()
    hw_key = manufacturer.construct_device("dev-001")
    binary = vendor.publish_binary()
    device = TnicControllerDevice("dev-001", hw_key, binary)
    manufacturer.disclose_hw_key("dev-001", vendor)
    stale_report = device.produce_report(b"old-nonce-0123456")
    with pytest.raises(ProtocolError, match="nonce"):
        vendor.verify_report(stale_report, b"fresh-nonce-89abc")


def test_unknown_device_serial_rejected():
    vendor = IpVendor()
    manufacturer = Manufacturer()
    hw_key = manufacturer.construct_device("dev-001")
    device = TnicControllerDevice("dev-001", hw_key, vendor.publish_binary())
    report = device.produce_report(b"n" * 16)
    with pytest.raises(ProtocolError, match="no manufacturer-rooted key"):
        vendor.verify_report(report, b"n" * 16)


def test_report_signature_must_match_attested_key():
    manufacturer = Manufacturer()
    vendor = IpVendor()
    hw_key = manufacturer.construct_device("dev-001")
    device = TnicControllerDevice("dev-001", hw_key, vendor.publish_binary())
    manufacturer.disclose_hw_key("dev-001", vendor)
    report = device.produce_report(b"n" * 16)
    forged = type(report)(
        certificate=report.certificate, nonce=report.nonce,
        signature=report.signature ^ 1,
    )
    with pytest.raises(ProtocolError, match="signature"):
        vendor.verify_report(forged, b"n" * 16)


def test_manufacturer_refuses_duplicate_serials():
    manufacturer = Manufacturer()
    manufacturer.construct_device("dev-001")
    with pytest.raises(ProtocolError):
        manufacturer.construct_device("dev-001")


def test_provisioning_is_deterministic_with_seeded_rng():
    m1, v1 = Manufacturer(), IpVendor()
    m2, v2 = Manufacturer(), IpVendor()
    r1 = provision_device(m1, v1, "dev-1", SESSIONS, rng=DeterministicRng(5))
    r2 = provision_device(m2, v2, "dev-1", SESSIONS, rng=DeterministicRng(5))
    assert r1.controller_public_key == r2.controller_public_key


# ---------------------------------------------------------------------------
# Secure channel
# ---------------------------------------------------------------------------

def test_channel_roundtrip():
    key = sha256("session")
    a, b = SecureChannel(key), SecureChannel(key)
    record = a.seal(b"secret bitstream")
    assert b.open(record) == b"secret bitstream"


def test_channel_rejects_tampered_ciphertext():
    key = sha256("session")
    a, b = SecureChannel(key), SecureChannel(key)
    record = a.seal(b"secret")
    tampered = SealedRecord(
        nonce=record.nonce,
        ciphertext=bytes([record.ciphertext[0] ^ 1]) + record.ciphertext[1:],
        tag=record.tag,
    )
    with pytest.raises(TlsError, match="authentication"):
        b.open(tampered)


def test_channel_rejects_replay():
    key = sha256("session")
    a, b = SecureChannel(key), SecureChannel(key)
    record = a.seal(b"secret")
    b.open(record)
    with pytest.raises(TlsError, match="replayed"):
        b.open(record)


def test_channel_wrong_key_fails():
    a = SecureChannel(sha256("k1"))
    b = SecureChannel(sha256("k2"))
    with pytest.raises(TlsError):
        b.open(a.seal(b"x"))


def test_channel_key_length_validated():
    with pytest.raises(ValueError):
        SecureChannel(b"short")
