"""Chrome trace-event export shape and the BENCH artifact comparator."""

import json
import pathlib
import sys

import pytest

from repro.cli import _instrumented_bft, _instrumented_workload, main
from repro.telemetry import chrome

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))

from run_all import _direction, _jsonable, compare  # noqa: E402


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
def _validate_trace_events(document: dict) -> list[dict]:
    """Assert the trace-event schema shape; return the X events."""
    assert set(document) >= {"traceEvents", "displayTimeUnit"}
    assert document["displayTimeUnit"] == "ms"
    complete = []
    for event in document["traceEvents"]:
        assert {"name", "ph", "pid", "tid"} <= set(event)
        assert event["ph"] in ("X", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert {"cat", "ts", "dur", "args"} <= set(event)
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            complete.append(event)
        else:
            assert "name" in event["args"]
    return complete


def test_chrome_export_schema_shape():
    _, hub = _instrumented_workload(3, seed=0, tamper=False)
    document = chrome.document(hub)
    complete = _validate_trace_events(document)
    assert len(complete) == len(hub.spans.finished)
    # pid groups by request: one process row per trace id.
    assert {e["pid"] for e in complete} == {
        s.trace_id for s in hub.spans.finished
    }
    names = {e["name"] for e in complete}
    assert {"request.auth_send", "tnic.post", "roce.tx"} <= names
    # Span args carry the tree structure for viewers.
    roots = [e for e in complete if e["args"]["parent"] is None]
    assert len(roots) == 3


def test_chrome_export_thread_metadata_names_nodes():
    system, hub = _instrumented_bft(2, seed=3)
    document = chrome.document(hub)
    threads = [e for e in document["traceEvents"]
               if e["ph"] == "M" and e["name"] == "thread_name"]
    named = {e["args"]["name"] for e in threads}
    assert system.leader_name in named
    assert set(system.followers) <= named
    # tids are unique and deterministically assigned in first-use order.
    tids = [e["tid"] for e in threads]
    assert len(tids) == len(set(tids))


def test_chrome_export_includes_profiler_rows():
    cluster, hub = _instrumented_workload(2, seed=0, tamper=False,
                                          profile=True)
    document = chrome.document(hub, profiler=cluster.sim.profiler)
    _validate_trace_events(document)
    rows = [e for e in document["traceEvents"]
            if e["ph"] == "X" and e["pid"] == chrome.PROFILER_PID]
    assert rows
    # Profiler rows tile the timeline: each starts where the last ended.
    cursor = 0.0
    for row in rows:
        assert row["ts"] == pytest.approx(cursor, abs=1e-6)
        cursor += row["dur"]
    assert "otherData" in document
    assert set(document["otherData"]["profile"]) == {
        "clock_us", "events_total", "host_cpu_ns", "host_cpu_ns_total",
        "sim",
    }


def test_chrome_export_deterministic_without_profiler():
    documents = []
    for _ in range(2):
        _, hub = _instrumented_workload(3, seed=2, tamper=False)
        documents.append(json.dumps(chrome.document(hub), sort_keys=True))
    assert documents[0] == documents[1]


def test_chrome_export_cli(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "--scenario", "bft", "--ops", "2", "--seed", "3",
                 "--export", "chrome", "--output", str(out)]) == 0
    capsys.readouterr()
    document = json.loads(out.read_text())
    complete = _validate_trace_events(document)
    assert any(e["name"] == "bft.request" for e in complete)


# ----------------------------------------------------------------------
# BENCH artifact comparison
# ----------------------------------------------------------------------
def test_compare_identical_documents_is_quiet():
    doc = {"data": {"events_per_second": 1000, "latency_us": 12.5}}
    assert compare(doc, doc) == []


def test_compare_flags_direction_aware_regressions():
    old = {"data": {"events_per_second": 1000, "latency_us": 10.0,
                    "label": "x"}}
    new = {"data": {"events_per_second": 800, "latency_us": 13.0,
                    "label": "x"}}
    findings = compare(old, new)
    by_path = {f["path"]: f for f in findings}
    assert by_path["data.events_per_second"]["regression"] is True
    assert by_path["data.latency_us"]["regression"] is True


def test_compare_improvements_are_changes_not_regressions():
    old = {"throughput_ops": 100, "p99_us": 50.0}
    new = {"throughput_ops": 150, "p99_us": 30.0}
    findings = compare(old, new)
    assert len(findings) == 2
    assert not any(f["regression"] for f in findings)


def test_compare_threshold_gates_noise():
    old = {"latency_us": 100.0}
    new = {"latency_us": 105.0}
    assert compare(old, new, threshold=0.10) == []
    assert len(compare(old, new, threshold=0.01)) == 1


def test_compare_missing_leaf_is_a_regression():
    old = {"data": {"kept": 1, "dropped_us": 2.0}}
    new = {"data": {"kept": 1}}
    findings = compare(old, new)
    assert len(findings) == 1
    assert findings[0]["path"] == "data.dropped_us"
    assert findings[0]["regression"] is True
    assert findings[0]["new"] is None


def test_direction_heuristics():
    assert _direction("data.events_per_second") == "higher"
    assert _direction("cache.hit_rate") == "higher"
    assert _direction("data.p99_us") == "lower"
    assert _direction("spans.evicted") == "lower"
    assert _direction("data.label") == "neutral"


def test_jsonable_handles_benchmark_result_shapes():
    import dataclasses

    @dataclasses.dataclass
    class Breakdown:
        compute_us: float
        transfer_us: float

    value = {
        64: Breakdown(1.23456789, 2.0),
        "names": ("a", "b"),
        "flags": {True, False},
    }
    out = _jsonable(value)
    assert out == {
        "64": {"compute_us": 1.234568, "transfer_us": 2.0},
        "names": ["a", "b"],
        "flags": [False, True],
    }
    assert json.dumps(out)  # plain JSON, round-trippable
