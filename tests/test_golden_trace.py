"""Golden-trace determinism: the kernel fast path is wall-clock-only.

The fixtures under ``tests/fixtures/golden/`` were generated with the
*pre-fast-path* simulator kernel (the seed of PR 4).  Each test re-runs
the same seeded scenario — one BFT round-trip batch and one
chain-replication workload — with tracing on and asserts the canonical
trace dump is byte-identical to the recorded golden.  Any change to
event ordering, same-timestamp tiebreaks, or virtual-time arithmetic
shows up here as a diff; optimisations that only shave wall-clock time
do not.

Regenerate (only when an *intentional* semantic change lands)::

    PYTHONPATH=src python tests/test_golden_trace.py --regenerate
"""

from __future__ import annotations

import pathlib

from repro.bench import kv_workload
from repro.sim.trace import Tracer
from repro.systems.bft import BftCounter
from repro.systems.chain import ChainReplication

GOLDEN_DIR = pathlib.Path(__file__).parent / "fixtures" / "golden"

#: Big enough that neither scenario ever evicts (eviction is
#: deterministic too, but a full trace makes diffs readable).
TRACE_CAPACITY = 500_000


def canonical_dump(tracer: Tracer, final_now: float, committed: int) -> str:
    """Byte-stable rendering of a trace: exact float repr, sorted fields."""
    lines = [
        f"# records={tracer.emitted} final_now={final_now!r} "
        f"committed={committed}"
    ]
    for index, record in enumerate(tracer.records()):
        fields = ",".join(
            f"{key}={value!r}" for key, value in sorted(record.fields.items())
        )
        lines.append(
            f"{index}|{record.time_us!r}|{record.category}|"
            f"{record.message}|{fields}"
        )
    return "\n".join(lines) + "\n"


def run_bft_round() -> str:
    system = BftCounter("tnic", f=1, batch=1, seed=3)
    system.sim.tracer = Tracer(capacity=TRACE_CAPACITY)
    metrics = system.run_workload(3, pipeline_depth=1)
    assert not system.aborted
    return canonical_dump(system.sim.tracer, system.sim.now, metrics.committed)


def run_chain_round() -> str:
    workload = kv_workload(6, read_fraction=0.3, value_bytes=60, seed=5)
    system = ChainReplication("tnic", chain_length=3, seed=5)
    system.sim.tracer = Tracer(capacity=TRACE_CAPACITY)
    metrics = system.run_workload(workload)
    assert not system.aborted
    return canonical_dump(system.sim.tracer, system.sim.now, metrics.committed)


SCENARIOS = {
    "golden_trace_bft.txt": run_bft_round,
    "golden_trace_chain.txt": run_chain_round,
}


def _compare(filename: str) -> None:
    golden = (GOLDEN_DIR / filename).read_text()
    actual = SCENARIOS[filename]()
    assert actual == golden, (
        f"{filename}: trace diverged from the pre-fast-path golden — "
        "the kernel changed virtual-time semantics or event ordering"
    )


def test_bft_trace_matches_golden():
    _compare("golden_trace_bft.txt")


def test_chain_trace_matches_golden():
    _compare("golden_trace_chain.txt")


def test_trace_is_run_to_run_deterministic():
    """Two in-process runs of one scenario must match exactly (no golden
    needed: guards against global mutable state — caches, counters —
    leaking into event order)."""
    assert run_chain_round() == run_chain_round()


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    import sys

    if "--regenerate" not in sys.argv:
        sys.exit("refusing to run without --regenerate")
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, scenario in SCENARIOS.items():
        (GOLDEN_DIR / name).write_text(scenario())
        print(f"wrote {GOLDEN_DIR / name}")
