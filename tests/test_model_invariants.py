"""State-space invariants of the verification models.

Beyond the paper's trace lemmas, these check structural invariants over
*every* reachable state of the symbolic models — the cheap-but-broad
assurances Tamarin gets from its sources lemmas."""

from repro.verification import TnicCommunicationModel, explore
from repro.verification.consistency import ConsistencyModel
from repro.verification.model import AttestationPhaseModel


def test_recv_never_exceeds_send():
    """A receiver can never have accepted more messages than were sent
    (counters can't run ahead of the sender's)."""
    model = TnicCommunicationModel(max_sends=3)
    reached, _ = explore(model, max_depth=7)
    for state, labels in reached:
        assert state.recv_cnt <= state.send_cnt, labels


def test_trace_events_match_counters():
    """The number of send/accept action facts equals the counter state
    (the trace is a faithful record)."""
    model = TnicCommunicationModel(max_sends=3)
    reached, _ = explore(model, max_depth=7)
    for state, _labels in reached:
        sends = sum(1 for e in state.trace if e.kind == "send")
        accepts = sum(1 for e in state.trace if e.kind == "accept")
        assert sends == state.send_cnt
        assert accepts == state.recv_cnt


def test_observed_messages_have_unique_counters():
    """The hardware assigns every published message a unique counter —
    even for an equivocating sender (non-equivocation's root cause)."""
    model = ConsistencyModel(max_sends=3, equivocating=True)
    reached, _ = explore(model, max_depth=7)
    for state, _labels in reached:
        counters = [m.counter for m in state.observed]
        assert len(counters) == len(set(counters))


def test_consistency_receiver_counts_bounded_by_sends():
    model = ConsistencyModel(max_sends=2, equivocating=True)
    reached, _ = explore(model, max_depth=7)
    for state, _labels in reached:
        assert len(state.accepted_r1) <= state.send_cnt
        assert len(state.accepted_r2) <= state.send_cnt


def test_attestation_model_vendor_done_at_most_once():
    model = AttestationPhaseModel()
    reached, _ = explore(model, max_depth=8)
    for state, _labels in reached:
        vendor_done = sum(1 for e in state.trace if e.kind == "vendor_done")
        assert vendor_done <= 1


def test_exploration_is_deterministic():
    a, explored_a = explore(TnicCommunicationModel(max_sends=2), max_depth=6)
    b, explored_b = explore(TnicCommunicationModel(max_sends=2), max_depth=6)
    assert explored_a == explored_b
    assert [labels for _, labels in a] == [labels for _, labels in b]


def test_state_count_grows_with_depth():
    shallow = explore(TnicCommunicationModel(max_sends=3), max_depth=3)[1]
    deep = explore(TnicCommunicationModel(max_sends=3), max_depth=7)[1]
    assert deep > shallow
